"""The executor plane: one scheduling/retry/telemetry surface for every
fan-out in the repo.

Before this module, each parallel consumer rolled its own pool: the lab
sweep runner wrapped ``concurrent.futures``, benches fanned through the
runner, and a sharded fleet run would have needed a third scheme.  The
:class:`Executor` interface collapses them to one lithops-style surface:

* ``submit(fn, *args) -> Future`` — one task, resolved by ``wait``;
* ``map(fn, argslist)`` — results in input order, any task whose worker
  crashes or raises retried **once, serially, in the parent** (a
  deterministic failure then reproduces with a clean traceback instead
  of a dead pool);
* ``wait(futures)`` — block until resolution, streaming per-task events
  to the ``on_event`` callback (the progress telemetry the lab CLI and
  the shard coordinator render);
* ``shutdown()`` — tear the backend down.

Two backends ship today.  :class:`SerialExecutor` runs everything
in-process — the reference behaviour every parallel result must be
byte-identical to.  :class:`LocalPoolExecutor` owns dedicated worker
processes with **per-worker task queues**, which buys the one feature a
shared pool cannot offer: ``submit(..., worker=i)`` pins a task to a
specific process.  Stateful shard workers (:mod:`repro.dist.shardsim`)
depend on that — a shard's simulators live in one process across the
whole windowed run, so every ``advance`` for shard *i* must land on the
same worker.  Remote backends (the lithops blueprint) slot in behind the
same interface.

The multiprocessing start method is pinned to ``spawn`` on every
platform: fork-inherited state is the classic source of 3.10-vs-3.12 and
Linux-vs-macOS divergence, and workers that re-import from a clean
interpreter are the only configuration whose determinism we can promise
everywhere.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: The pinned multiprocessing start method (see module docstring).
START_METHOD = "spawn"

#: Future / task-event states.
PENDING = "pending"
DONE = "done"
FAILED = "failed"
RETRIED = "retried"  # map(): resolved by the serial retry pass

#: Grace period for draining results of a worker that just died — a
#: worker can crash after flushing its last result into the queue.
CRASH_DRAIN_S = 1.0


class TaskError(RuntimeError):
    """A task failed in a worker; the message carries the worker-side
    traceback so the failure is debuggable from the parent."""


class WorkerCrashError(TaskError):
    """The worker process died (signal, ``os._exit``) mid-task."""


class Future:
    """Handle to one submitted task."""

    __slots__ = ("task_id", "label", "worker", "status", "wall_s", "_result", "_error")

    def __init__(self, task_id: int, label: str, worker: Optional[int]):
        self.task_id = task_id
        self.label = label
        #: Worker slot the task was pinned to (None = any).
        self.worker = worker
        self.status = PENDING
        self.wall_s = 0.0
        self._result: Any = None
        self._error: Optional[TaskError] = None

    @property
    def done(self) -> bool:
        return self.status != PENDING

    def result(self) -> Any:
        """The task's return value; raises its :class:`TaskError` if it
        failed, and :class:`TaskError` if it has not resolved yet."""
        if self.status == PENDING:
            raise TaskError(f"task {self.label!r} not resolved; wait() first")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, value: Any, wall_s: float) -> None:
        self._result = value
        self.wall_s = wall_s
        self.status = DONE

    def _fail(self, error: TaskError, wall_s: float) -> None:
        self._error = error
        self.wall_s = wall_s
        self.status = FAILED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future #{self.task_id} {self.label!r} {self.status}>"


@dataclass(frozen=True)
class TaskEvent:
    """One task's resolution, streamed to the executor's ``on_event``."""

    task_id: int
    label: str
    status: str  # DONE | FAILED | RETRIED
    wall_s: float = 0.0
    error: str = ""


@dataclass
class ExecutorStats:
    """Whole-executor counters (the observable telemetry contract)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    #: Tasks that could not reach a worker (unpicklable fn, dead pool)
    #: and ran in the parent instead.
    inline: int = 0
    crashes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "inline": self.inline,
            "crashes": self.crashes,
        }


OnEvent = Callable[[TaskEvent], None]


class Executor:
    """The scheduling interface; see the module docstring for semantics."""

    def __init__(self, on_event: Optional[OnEvent] = None):
        self.stats = ExecutorStats()
        self._on_event = on_event

    # -- backend hooks --------------------------------------------------
    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        worker: Optional[int] = None,
        label: Optional[str] = None,
    ) -> Future:
        raise NotImplementedError

    def wait(self, futures: Optional[Sequence[Future]] = None) -> None:
        """Block until the given futures (default: everything submitted
        so far) have resolved."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources.  Idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- shared machinery -----------------------------------------------
    def _emit(self, future: Future, status: str, error: str = "") -> None:
        if self._on_event is not None:
            self._on_event(
                TaskEvent(future.task_id, future.label, status, future.wall_s, error)
            )

    def map(
        self,
        fn: Callable[..., Any],
        argslist: Sequence[Tuple],
        on_result: Optional[Callable[[int, str, float, Any], None]] = None,
    ) -> List[Any]:
        """Run ``fn(*args)`` for every args tuple; results in input order.

        Tasks that fail in a worker — crash or exception — are retried
        once, serially, in the calling process after the parallel pass
        drains; a second failure propagates the real exception.
        ``on_result(index, status, wall_s, result)`` streams resolutions
        (status :data:`DONE`, :data:`RETRIED` or :data:`FAILED`).
        """
        futures = [
            self.submit(fn, *args, label=f"{getattr(fn, '__name__', 'task')}[{i}]")
            for i, args in enumerate(argslist)
        ]
        index_of = {f.task_id: i for i, f in enumerate(futures)}

        if on_result is not None:
            # Stream parallel completions as they land.
            def stream(future: Future) -> None:
                if future.status == DONE:
                    on_result(index_of[future.task_id], DONE, future.wall_s,
                              future._result)

            self._wait_streaming(futures, stream)
        else:
            self.wait(futures)

        results: List[Any] = [None] * len(futures)
        for i, future in enumerate(futures):
            if future.status == DONE:
                results[i] = future._result
                continue
            # Serial retry in the parent (once).  Counted when attempted,
            # so telemetry still shows the retry of a doubly-failing task.
            self.stats.retried += 1
            t0 = time.perf_counter()
            try:
                results[i] = fn(*argslist[i])
            except Exception as exc:
                if on_result is not None:
                    on_result(i, FAILED, time.perf_counter() - t0, exc)
                raise
            if on_result is not None:
                on_result(i, RETRIED, time.perf_counter() - t0, results[i])
        return results

    def _wait_streaming(
        self, futures: Sequence[Future], on_resolve: Callable[[Future], None]
    ) -> None:
        """``wait`` plus a per-future resolution callback.  The default
        implementation waits first and replays; pool backends stream."""
        self.wait(futures)
        for future in futures:
            on_resolve(future)


class SerialExecutor(Executor):
    """The in-process reference backend: ``submit`` runs immediately.

    Every parallel backend's results must be byte-identical to this one
    — it is also what the shard coordinator uses for the *unsharded*
    reference path and what tests compare pools against.
    """

    start_method: Optional[str] = None  # no worker processes at all

    def __init__(self, on_event: Optional[OnEvent] = None):
        super().__init__(on_event)
        self._futures: List[Future] = []
        self._next_id = 0

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        worker: Optional[int] = None,
        label: Optional[str] = None,
    ) -> Future:
        future = Future(self._next_id, label or getattr(fn, "__name__", "task"), worker)
        self._next_id += 1
        self.stats.submitted += 1
        t0 = time.perf_counter()
        try:
            value = fn(*args)
        except Exception as exc:
            future._fail(
                TaskError(f"{future.label}: {type(exc).__name__}: {exc}"),
                time.perf_counter() - t0,
            )
            self.stats.failed += 1
            self._emit(future, FAILED, str(exc))
        else:
            future._resolve(value, time.perf_counter() - t0)
            self.stats.completed += 1
            self._emit(future, DONE)
        self._futures.append(future)
        return future

    def wait(self, futures: Optional[Sequence[Future]] = None) -> None:
        return None  # everything resolved at submit time


@dataclass
class _Task:
    """Parent-side record of one in-flight pool task."""

    future: Future
    worker: int
    t0: float = field(default_factory=time.perf_counter)


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker process loop: run pickled tasks until the ``None`` sentinel.

    Both directions carry pre-pickled payloads so serialization errors
    surface synchronously in whichever process produced the object,
    never asynchronously in a queue feeder thread.
    """
    while True:
        payload = task_queue.get()
        if payload is None:
            break
        task_id, fn, args = pickle.loads(payload)
        try:
            out = pickle.dumps((task_id, True, fn(*args)))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            out = pickle.dumps(
                (task_id, False, f"{type(exc).__name__}: {exc}\n"
                 + traceback.format_exc())
            )
        result_queue.put(out)


class LocalPoolExecutor(Executor):
    """Dedicated worker processes with per-worker task queues.

    ``jobs`` worker slots are spawned lazily on first use.  Unpinned
    submits round-robin across live slots; ``worker=i`` pins a task to
    slot ``i % jobs`` — the FIFO task queue per slot is what lets
    stateful shard workers rely on one process seeing all their tasks
    in submission order.

    A worker that dies mid-task fails its in-flight futures with
    :class:`WorkerCrashError` and its slot stays dead (state it held is
    gone; respawning would silently violate the pinning contract).
    ``map`` recovers by retrying serially; ``submit`` callers see the
    crash in ``Future.result()``.
    """

    start_method = START_METHOD

    def __init__(self, jobs: int, on_event: Optional[OnEvent] = None):
        super().__init__(on_event)
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._ctx = multiprocessing.get_context(START_METHOD)
        self._task_queues = [self._ctx.Queue() for _ in range(jobs)]
        self._result_queue = self._ctx.Queue()
        self._workers: List[Optional[Any]] = [None] * jobs
        self._inflight: Dict[int, _Task] = {}
        self._next_id = 0
        self._rr = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _slot_alive(self, slot: int) -> bool:
        proc = self._workers[slot]
        if proc is None:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(slot, self._task_queues[slot], self._result_queue),
                daemon=True,
            )
            proc.start()
            self._workers[slot] = proc
            return True
        return proc.is_alive()

    def _pick_slot(self) -> Optional[int]:
        """Round-robin over slots that are live (or never started)."""
        for _ in range(self.jobs):
            slot = self._rr % self.jobs
            self._rr += 1
            proc = self._workers[slot]
            if proc is None or proc.is_alive():
                return slot
        return None

    def _run_inline(self, future: Future, fn: Callable[..., Any], args: Tuple) -> None:
        t0 = time.perf_counter()
        self.stats.inline += 1
        try:
            value = fn(*args)
        except Exception as exc:
            future._fail(
                TaskError(f"{future.label}: {type(exc).__name__}: {exc}"),
                time.perf_counter() - t0,
            )
            self.stats.failed += 1
            self._emit(future, FAILED, str(exc))
        else:
            future._resolve(value, time.perf_counter() - t0)
            self.stats.completed += 1
            self._emit(future, DONE)

    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        worker: Optional[int] = None,
        label: Optional[str] = None,
    ) -> Future:
        if self._closed:
            raise TaskError("executor is shut down")
        future = Future(self._next_id, label or getattr(fn, "__name__", "task"), worker)
        self._next_id += 1
        self.stats.submitted += 1
        try:
            payload = pickle.dumps((future.task_id, fn, args))
        except Exception:
            # Not transportable to a worker — degrade to the parent, the
            # same "pool unusable -> serial" guarantee the lab runner has
            # always offered.
            self._run_inline(future, fn, args)
            return future
        slot = worker % self.jobs if worker is not None else self._pick_slot()
        if slot is None or not self._slot_alive(slot):
            if worker is not None:
                # The pinned slot is dead: state that lived there is
                # unrecoverable, so fail loudly instead of degrading.
                future._fail(
                    WorkerCrashError(
                        f"{future.label}: pinned worker {slot} is dead"
                    ),
                    0.0,
                )
                self.stats.failed += 1
                self._emit(future, FAILED, "pinned worker dead")
                return future
            self._run_inline(future, fn, args)
            return future
        self._inflight[future.task_id] = _Task(future, slot)
        self._task_queues[slot].put(payload)
        return future

    # ------------------------------------------------------------------
    def _resolve_payload(
        self, payload: bytes, on_resolve: Optional[Callable[[Future], None]]
    ) -> None:
        task_id, ok, value = pickle.loads(payload)
        task = self._inflight.pop(task_id, None)
        if task is None:  # pragma: no cover - defensive (duplicate result)
            return
        wall_s = time.perf_counter() - task.t0
        if ok:
            task.future._resolve(value, wall_s)
            self.stats.completed += 1
            self._emit(task.future, DONE)
        else:
            task.future._fail(TaskError(f"{task.future.label}: {value}"), wall_s)
            self.stats.failed += 1
            self._emit(task.future, FAILED, str(value))
        if on_resolve is not None:
            on_resolve(task.future)

    def _fail_crashed(
        self, on_resolve: Optional[Callable[[Future], None]]
    ) -> bool:
        """Fail in-flight tasks whose worker died.  Returns True if any
        worker was found dead (after a grace drain for already-flushed
        results)."""
        dead = [
            slot
            for slot, proc in enumerate(self._workers)
            if proc is not None and not proc.is_alive()
        ]
        dead_with_work = [
            slot for slot in dead
            if any(t.worker == slot for t in self._inflight.values())
        ]
        if not dead_with_work:
            return False
        # A worker can exit between flushing its result and our liveness
        # check: drain whatever made it into the queue first.
        deadline = time.perf_counter() + CRASH_DRAIN_S
        while time.perf_counter() < deadline:
            try:
                self._resolve_payload(
                    self._result_queue.get(timeout=0.05), on_resolve
                )
            except queue_mod.Empty:
                break
        for task_id in sorted(
            tid for tid, t in self._inflight.items() if t.worker in dead_with_work
        ):
            task = self._inflight.pop(task_id)
            self.stats.crashes += 1
            self.stats.failed += 1
            task.future._fail(
                WorkerCrashError(
                    f"{task.future.label}: worker {task.worker} died "
                    f"(exitcode {self._workers[task.worker].exitcode})"
                ),
                time.perf_counter() - task.t0,
            )
            self._emit(task.future, FAILED, "worker crashed")
            if on_resolve is not None:
                on_resolve(task.future)
        return True

    def _wait_streaming(
        self,
        futures: Optional[Sequence[Future]],
        on_resolve: Optional[Callable[[Future], None]],
    ) -> None:
        if futures is not None:
            # Inline/instant resolutions never hit the result queue.
            for future in futures:
                if future.done and on_resolve is not None:
                    on_resolve(future)
            wanted = {f.task_id for f in futures}
        else:
            wanted = None

        def pending() -> bool:
            if wanted is None:
                return bool(self._inflight)
            return any(tid in self._inflight for tid in wanted)

        while pending():
            try:
                payload = self._result_queue.get(timeout=0.1)
            except queue_mod.Empty:
                self._fail_crashed(on_resolve)
                continue
            self._resolve_payload(payload, on_resolve)

    def wait(self, futures: Optional[Sequence[Future]] = None) -> None:
        self._wait_streaming(futures, None)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for slot, proc in enumerate(self._workers):
            if proc is not None and proc.is_alive():
                self._task_queues[slot].put(None)
        for proc in self._workers:
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=1.0)
        # Drop queue feeder threads so interpreter shutdown never blocks.
        for q in [*self._task_queues, self._result_queue]:
            q.cancel_join_thread()
            q.close()
