"""CLI surface of the shard plane: ``python -m repro dist``.

Runs one fleet simulation sharded across worker processes and prints a
human summary or (``--json``) the full result document.  The artifact
digest is a pure function of the fleet spec — ``--check`` exploits that
by running the same fleet unsharded *and* sharded and comparing digests,
which is the shard plane's core guarantee (exit 3 on mismatch, so CI can
gate on it).

Exit statuses: 0 ok, 2 usage errors (argparse or invalid spec values),
3 determinism mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..sim import MS
from .coordinator import run_fleet
from .fleet import FleetSpec, reference_fleet

EXIT_MISMATCH = 3


def add_dist_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "dist",
        help="sharded fleet simulation (exits 3 if shard counts disagree)",
        description=(
            "Simulate a fleet of EBS deployments partitioned across "
            "worker processes with conservative lookahead windows; "
            "cross-deployment traffic (rebuild spillover, migrations, "
            "fabric incidents) crosses shard boundaries as timestamped "
            "messages.  Artifacts are byte-identical for every --shards."
        ),
    )
    parser.add_argument("--shards", type=int, default=1,
                        help="worker processes (default 1 = in-process)")
    parser.add_argument("--deployments", type=int, default=4,
                        help="fleet size for the reference fleet (default 4)")
    parser.add_argument("--runtime-ms", type=int, default=20,
                        help="per-deployment fio runtime in ms (default 20)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--spec", type=argparse.FileType("r"), default=None,
                        metavar="FILE",
                        help="load a FleetSpec JSON instead of the "
                             "reference fleet (- for stdin)")
    parser.add_argument("--check", action="store_true",
                        help="also run unsharded and compare digests "
                             "(exit 3 on mismatch)")
    parser.add_argument("--json", action="store_true",
                        help="print the full result document as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-deployment table")


def _build_spec(args) -> FleetSpec:
    if args.spec is not None:
        with args.spec as handle:
            return FleetSpec.from_json(handle.read())
    return reference_fleet(
        deployments=args.deployments,
        runtime_ns=args.runtime_ms * MS,
        seed=args.seed,
    )


def cmd_dist(args) -> int:
    try:
        spec = _build_spec(args)
        result = run_fleet(spec, shards=args.shards)
    except ValueError as exc:
        print(f"dist: {exc}", file=sys.stderr)
        return 2

    if args.check and result.shards != 1:
        reference = run_fleet(spec, shards=1)
        if reference.digest != result.digest:
            print(
                f"DETERMINISM MISMATCH: shards=1 {reference.digest} != "
                f"shards={result.shards} {result.digest}",
                file=sys.stderr,
            )
            return EXIT_MISMATCH

    if args.json:
        doc = result.to_dict()
        if args.check:
            doc["checked_against_unsharded"] = result.shards != 1
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    s = result.summary
    print(f"fleet {spec.name!r}: {s['deployments']} deployments, "
          f"{result.shards} shard(s), {result.windows} windows")
    print(f"  digest        {result.digest}")
    print(f"  events        {result.events_processed} "
          f"({result.events_per_sec:,.0f}/s over {result.wall_s:.2f}s)")
    print(f"  messages      {result.messages_routed} routed, "
          f"{result.messages_dropped} dropped past horizon")
    print(f"  foreground    {s['completed']}/{s['issued']} I/Os, "
          f"{s['failed']} failed, {s['hangs']} hung")
    print(f"  cross-shard   {s['injected_completed']}/{s['injected_issued']} "
          f"injected I/Os, {s['incidents']} incidents "
          f"({s['remote_incidents']} remote)")
    if s["latency_p99_ns"] is not None:
        print(f"  latency       p50 {s['latency_p50_ns'] / 1000:.1f}us  "
              f"p99 {s['latency_p99_ns'] / 1000:.1f}us")
    if not args.quiet:
        print(f"  {'dep':>4s} {'stack':10s} {'done':>6s} {'inj':>5s} "
              f"{'msgs i/o':>9s} {'events':>9s}")
        for a in result.artifacts:
            print(f"  d{a['index']:<3d} {a['stack']:10s} "
                  f"{a['completed']:>6d} {a['injected_completed']:>5d} "
                  f"{a['messages_in']:>4d}/{a['messages_out']:<4d} "
                  f"{a['events_processed']:>9d}")
    if args.check:
        state = "verified" if result.shards != 1 else "trivial (1 shard)"
        print(f"  determinism   {state}")
    return 0
