"""`repro.dist` — sharded multi-process fleet simulation on a pluggable
executor plane.

Two planes, layered:

* the **executor plane** (:mod:`repro.dist.executor`) — a lithops-style
  ``submit``/``map``/``wait`` interface over worker processes with
  futures, crash-retry and progress telemetry.  The experiment lab's
  sweep runner (:mod:`repro.lab.runner`) and the shard coordinator both
  schedule through it, so every fan-out in the repo shares one
  scheduling/retry/telemetry surface;
* the **shard plane** (:mod:`repro.dist.fleet`,
  :mod:`repro.dist.shardsim`, :mod:`repro.dist.coordinator`) — a
  :class:`FleetSpec` partitioned into deployment-granular shards, each
  advancing its own :class:`repro.sim.Simulator` instances under
  conservative lookahead-window synchronization, with cross-shard
  traffic exchanged as timestamped :class:`repro.net.fabric.ShardMessage`
  records at FN-fabric boundaries.  Artifacts are byte-identical across
  shard counts — determinism is the acceptance bar, parallelism the
  payoff.
"""

from .executor import (
    Executor,
    Future,
    LocalPoolExecutor,
    SerialExecutor,
    TaskError,
    WorkerCrashError,
)

#: Shard-plane symbols resolve lazily (PEP 562): the executor plane must
#: stay importable from ``repro.lab.runner`` without dragging the whole
#: simulation stack (ebs/control/rebuild) into the import graph.
_LAZY = {
    "FleetDeployment": "fleet",
    "FleetEvent": "fleet",
    "FleetSpec": "fleet",
    "partition": "fleet",
    "reference_fleet": "fleet",
    "FleetResult": "coordinator",
    "run_fleet": "coordinator",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)


__all__ = [
    "Executor",
    "Future",
    "LocalPoolExecutor",
    "SerialExecutor",
    "TaskError",
    "WorkerCrashError",
    "FleetDeployment",
    "FleetEvent",
    "FleetSpec",
    "FleetResult",
    "partition",
    "reference_fleet",
    "run_fleet",
]
