"""Declarative fleet specifications for sharded multi-process runs.

A :class:`FleetSpec` is to the shard plane what an
:class:`~repro.lab.spec.ExperimentSpec` is to the lab: a frozen,
canonically-serializable description of everything that can change the
outcome.  It names a list of :class:`FleetDeployment`s — each one an
independent EBS deployment under its own closed-loop fio load, always
simulated in its **own** :class:`repro.sim.Simulator` — plus a schedule
of :class:`FleetEvent`s whose effects cross deployment boundaries as
timestamped fabric messages (:mod:`repro.net.fabric`).

Deployment granularity is the sharding unit *and* the determinism
anchor: because a deployment's simulator never shares a clock with
another deployment, partitioning deployments across 1, 2 or 4 worker
processes cannot change any deployment's event stream — only the
transport of boundary messages moves between in-process hand-off and
pickled IPC, and those are identical by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from .. import __version__
from ..lab.spec import canonical_json
from ..sim import MS

#: Bump when fleet artifacts change shape — digests only compare within
#: one schema generation.
FLEET_SCHEMA_VERSION = 1

#: Cross-shard event kinds and the cross-boundary traffic they emit.
EVENT_KINDS = ("node_fault", "migration", "incident")


@dataclass(frozen=True)
class FleetDeployment:
    """One deployment of the fleet: shape, seed and foreground load.

    The load is the closed-loop fio job described by ``block_sizes``/
    ``iodepth``/``read_fraction``/``runtime_ns`` — unless ``trace_rows``
    is non-empty, in which case the deployment replays those recorded
    (at_ns, kind, offset, size) rows instead (a `repro.scenario` fleet
    trace stream) and the fio fields are ignored.
    """

    stack: str = "solar"
    seed: int = 0
    compute_racks: int = 1
    compute_hosts_per_rack: int = 2
    storage_racks: int = 1
    storage_hosts_per_rack: int = 4
    vd_size_mb: int = 64
    block_sizes: Tuple[int, ...] = (4096,)
    iodepth: int = 8
    read_fraction: float = 0.5
    runtime_ns: int = 20 * MS
    #: Recorded I/O rows to replay instead of the fio load.  Serialized
    #: only when non-empty, so fio-only fleets keep their digests.
    trace_rows: Tuple[Tuple[int, str, int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.iodepth < 1:
            raise ValueError(f"iodepth must be >= 1, got {self.iodepth}")
        if self.runtime_ns <= 0:
            raise ValueError(f"runtime_ns must be positive: {self.runtime_ns}")
        if self.vd_size_mb <= 0:
            raise ValueError(f"vd_size_mb must be positive: {self.vd_size_mb}")
        if not self.block_sizes:
            raise ValueError("block_sizes cannot be empty")
        for row in self.trace_rows:
            at_ns, kind, offset, size = row
            if at_ns < 0 or offset < 0 or size <= 0 or kind not in ("read", "write"):
                raise ValueError(f"invalid trace row: {row}")

    @property
    def workload_horizon_ns(self) -> int:
        """Simulated time by which the last I/O has been issued."""
        if self.trace_rows:
            return max(row[0] for row in self.trace_rows)
        return self.runtime_ns


@dataclass(frozen=True)
class FleetEvent:
    """One scheduled cross-deployment event.

    At ``at_ns`` the event fires *locally* in deployment ``src`` and
    exports one fabric message to deployment ``dst``, delivered no
    earlier than ``at_ns + crossing_ns``:

    * ``node_fault`` — ``src`` loses a storage node: it declares the
      incident, pays the rebuild *read* load against its surviving
      replicas, and the re-replication *write* stream (``size_kb`` of
      data, paced at ``rate_gbps``) lands on ``dst``'s BN;
    * ``migration`` — a VD migrates from ``src`` to ``dst``: the
      destination picks up the migrated guest's paced write load
      (``count`` I/Os of ``size_kb`` every ``gap_ns``);
    * ``incident`` — a fabric incident at ``src`` propagates: ``dst``
      books a remote incident and suffers a ``param``-fraction spine
      blackhole for ``duration_ns``.
    """

    at_ns: int
    kind: str
    src: int
    dst: int
    #: Kind-specific intensity (blackhole fraction for ``incident``).
    param: float = 0.5
    #: Payload volume (rebuild bytes / migrated-I/O size).
    size_kb: int = 512
    #: Rebuild pacing across the fabric boundary.
    rate_gbps: float = 8.0
    #: Migration load shape.
    count: int = 16
    gap_ns: int = 100_000
    #: Incident blackhole window.
    duration_ns: int = 2 * MS

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}, got {self.kind!r}")
        if self.at_ns < 0:
            raise ValueError(f"event cannot fire before t=0: {self.at_ns}")
        if self.src == self.dst:
            raise ValueError(
                f"cross-shard events need distinct src/dst, got {self.src}"
            )
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"negative deployment index: {self}")
        if self.size_kb <= 0 or self.count < 1 or self.gap_ns < 0:
            raise ValueError(f"invalid event load shape: {self}")
        if not 0.0 < self.param <= 1.0:
            raise ValueError(f"param must be in (0, 1]: {self.param}")
        if self.rate_gbps <= 0 or self.duration_ns <= 0:
            raise ValueError(f"invalid event pacing: {self}")


@dataclass(frozen=True)
class FleetSpec:
    """One named fleet: deployments x cross-shard events x sync windows."""

    deployments: Tuple[FleetDeployment, ...] = ()
    events: Tuple[FleetEvent, ...] = ()
    name: str = "fleet"
    #: Conservative lookahead window: every shard advances in lockstep
    #: barriers this far apart.
    window_ns: int = 1 * MS
    #: Minimum FN-fabric crossing latency for inter-deployment traffic.
    #: Must be >= ``window_ns`` — that inequality *is* the lookahead
    #: correctness argument (nothing produced inside a window can land
    #: before the next barrier).
    crossing_ns: int = 1 * MS
    #: Absolute end of the run; None derives max runtime + drain slack.
    horizon_ns: int | None = None
    #: Slack past the longest workload for in-flight I/O and spillover.
    drain_ns: int = 10 * MS

    def __post_init__(self) -> None:
        if not self.deployments:
            raise ValueError("a fleet needs at least one deployment")
        if self.window_ns <= 0:
            raise ValueError(f"window_ns must be positive: {self.window_ns}")
        if self.crossing_ns < self.window_ns:
            raise ValueError(
                f"crossing_ns ({self.crossing_ns}) must be >= window_ns "
                f"({self.window_ns}); the conservative lookahead protocol "
                "is unsound otherwise"
            )
        n = len(self.deployments)
        for event in self.events:
            if event.src >= n or event.dst >= n:
                raise ValueError(
                    f"event references deployment {max(event.src, event.dst)} "
                    f"but the fleet has only {n}"
                )
            if event.at_ns >= self.effective_horizon_ns:
                raise ValueError(
                    f"event at {event.at_ns}ns fires past the fleet horizon "
                    f"({self.effective_horizon_ns}ns)"
                )
        if self.drain_ns < 0:
            raise ValueError(f"drain_ns cannot be negative: {self.drain_ns}")

    @property
    def effective_horizon_ns(self) -> int:
        if self.horizon_ns is not None:
            return self.horizon_ns
        return max(d.workload_horizon_ns for d in self.deployments) + self.drain_ns

    def windows(self) -> List[int]:
        """The barrier horizons: window_ns steps, last one clamped."""
        horizon = self.effective_horizon_ns
        steps = list(range(self.window_ns, horizon, self.window_ns))
        steps.append(horizon)
        return steps

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        for dep in d["deployments"]:
            dep["block_sizes"] = list(dep["block_sizes"])
            # Omitted when empty: fleets recorded before trace replay
            # existed must keep their digests byte-identical.
            if dep["trace_rows"]:
                dep["trace_rows"] = [list(row) for row in dep["trace_rows"]]
            else:
                del dep["trace_rows"]
        return d

    def to_json(self) -> str:
        return canonical_json(self.to_dict()).decode("ascii")

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FleetSpec":
        # Missing keys and unknown fields surface as ValueError so CLI
        # callers can report a malformed spec file instead of crashing.
        try:
            d = dict(d)
            deployments = []
            for dep in d.pop("deployments"):
                dep = dict(dep)
                dep["block_sizes"] = tuple(dep["block_sizes"])
                dep["trace_rows"] = tuple(
                    tuple(row) for row in dep.pop("trace_rows", ())
                )
                deployments.append(FleetDeployment(**dep))
            events = tuple(FleetEvent(**e) for e in d.pop("events"))
            return cls(deployments=tuple(deployments), events=events, **d)
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed fleet spec: {exc!r}") from exc

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        return cls.from_dict(json.loads(text))

    # -- content addressing ---------------------------------------------
    def digest(self) -> str:
        """Content address of this fleet's result artifact."""
        material = self.to_dict()
        material.pop("name")  # presentation-only
        material["version"] = __version__
        material["schema"] = FLEET_SCHEMA_VERSION
        return hashlib.sha256(canonical_json(material)).hexdigest()


def partition(n_deployments: int, shards: int) -> List[List[int]]:
    """Deployment indices per shard — deterministic round-robin.

    Round-robin (not contiguous blocks) so every shard count spreads
    early/late deployments evenly; the assignment is a pure function of
    the two counts, which the determinism tests rely on.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n_deployments)
    assignment: List[List[int]] = [[] for _ in range(shards)]
    for index in range(n_deployments):
        assignment[index % shards].append(index)
    return assignment


def reference_fleet(
    deployments: int = 4,
    runtime_ns: int = 20 * MS,
    seed: int = 42,
    name: str = "reference",
) -> FleetSpec:
    """The fixed reference fleet the CLI default, CI smoke and scaling
    bench all run: alternating SOLAR/LUNA deployments with one of each
    cross-shard event kind wired between neighbours."""
    if deployments < 2:
        raise ValueError("the reference fleet needs >= 2 deployments")
    deps = tuple(
        FleetDeployment(
            stack="solar" if i % 2 == 0 else "luna",
            seed=seed + i,
            runtime_ns=runtime_ns,
        )
        for i in range(deployments)
    )
    quarter = max(1 * MS, runtime_ns // 4)
    events = (
        FleetEvent(at_ns=quarter, kind="node_fault", src=0, dst=1, size_kb=1024),
        FleetEvent(at_ns=2 * quarter, kind="migration",
                   src=1, dst=(2 % deployments) or 0, count=32, size_kb=16),
        FleetEvent(at_ns=3 * quarter, kind="incident",
                   src=(2 % deployments), dst=(3 % deployments), param=0.5),
    )
    # Drop events that degenerate to self-loops on tiny fleets.
    events = tuple(e for e in events if e.src != e.dst)
    return FleetSpec(deployments=deps, events=events, name=name)
