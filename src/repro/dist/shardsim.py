"""Per-shard simulation state: deployment sims, event effects, workers.

A shard owns a subset of the fleet's deployments.  Each deployment runs
in its **own** :class:`~repro.sim.Simulator` — a :class:`DeploymentSim`
bundles the simulator with its EBS deployment, foreground fio load,
hang/health monitoring and the :class:`~repro.net.fabric.FabricBoundary`
through which cross-deployment traffic leaves.  A :class:`ShardState` is
just an ordered collection of those, advanced window by window.

The bottom of the file is the multi-process face: a module-global shard
registry plus three picklable functions (:func:`worker_create`,
:func:`worker_advance`, :func:`worker_finish`) that the coordinator
submits to a pinned executor worker.  Pinning matters — the registry
lives in the worker process, so every call for shard *k* must land on
the same process; the executor's ``worker=`` argument provides exactly
that affinity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..ebs.deployment import DeploymentSpec, EbsDeployment
from ..ebs.virtual_disk import VirtualDisk
from ..faults.injection import IoHangMonitor
from ..control.health import HealthMonitor
from ..net.fabric import FabricBoundary, ShardMessage
from ..net.failures import switch_blackhole
from ..rebuild.planner import spillover_schedule
from ..telemetry.sketch import QuantileSketch
from ..workloads.fio import FioJob, FioSpec
from ..workloads.replay import IoRecord, replay
from .fleet import FleetEvent, FleetSpec

#: Chunk size for injected cross-shard streams (rebuild spillover and
#: migrated rebuild reads) — one BN-friendly unit, block aligned.
INJECT_CHUNK_BYTES = 64 * 1024


class _TraceJob:
    """Trace replay behind a FioJob-shaped face.

    A deployment with ``trace_rows`` drives
    :func:`repro.workloads.replay.replay` instead of a closed-loop fio
    job; this adapter exposes the counter attributes ``finish()`` reads
    (``issues``/``completed``/``failed``/``bytes_moved``/``latency``) so
    the artifact path is one code path for both load kinds.
    """

    def __init__(self, sim, vd, rows, on_issue):
        self._sim = sim
        self._vd = vd
        self._records = [IoRecord(*row) for row in rows]
        self._on_issue = on_issue
        self._result = None

    def start(self) -> None:
        self._result = replay(
            self._sim, self._vd, self._records, on_issue=self._on_issue
        )

    @property
    def issues(self) -> int:
        return self._result.issued if self._result else 0

    @property
    def completed(self) -> int:
        return self._result.completed if self._result else 0

    @property
    def failed(self) -> int:
        return self._result.failed if self._result else 0

    @property
    def bytes_moved(self) -> int:
        return self._result.issued_bytes if self._result else 0

    @property
    def latency(self):
        if self._result is None:
            raise RuntimeError("trace job was never started")
        return self._result.latency


class DeploymentSim:
    """One fleet deployment in its own simulator, ready to window-step."""

    def __init__(self, fleet: FleetSpec, index: int):
        self.fleet = fleet
        self.index = index
        dep = fleet.deployments[index]
        self.deployment = EbsDeployment(
            DeploymentSpec(
                stack=dep.stack,
                seed=dep.seed,
                compute_racks=dep.compute_racks,
                compute_hosts_per_rack=dep.compute_hosts_per_rack,
                storage_racks=dep.storage_racks,
                storage_hosts_per_rack=dep.storage_hosts_per_rack,
            )
        )
        self.sim = self.deployment.sim
        host = self.deployment.compute_host_names()[0]
        self.vd = VirtualDisk(
            self.deployment,
            f"dist-vd{index}",
            host,
            dep.vd_size_mb * 1024 * 1024,
        )
        self.health = HealthMonitor(self.sim)
        self.hangs = IoHangMonitor(self.sim, on_hang=self.health.report_hang)
        if dep.trace_rows:
            self.job = _TraceJob(
                self.sim, self.vd, dep.trace_rows, on_issue=self.hangs.watch
            )
        else:
            self.job = FioJob(
                self.sim,
                self.vd,
                FioSpec(
                    block_sizes=tuple(dep.block_sizes),
                    iodepth=dep.iodepth,
                    read_fraction=dep.read_fraction,
                    runtime_ns=dep.runtime_ns,
                    name=f"dist-d{index}",
                ),
                on_issue=self.hangs.watch,
            )
        self.boundary = FabricBoundary(self.sim, index, fleet.crossing_ns)
        self.received = 0
        self.injected_issued = 0
        self.injected_completed = 0
        self.injected_failed = 0
        self.injected_bytes = 0
        self._inject_cursor = 0
        self.sim.call_soon(self.job.start)
        # Outbound events originate here at fixed times — schedule the
        # local half and the boundary export up front, so a deployment's
        # entire event stream is fixed at construction.
        for event in fleet.events:
            if event.src == index:
                self.sim.schedule_at(event.at_ns, self._fire_event, event)

    # -- source-side event effects --------------------------------------
    def _fire_event(self, event: FleetEvent) -> None:
        if event.kind == "node_fault":
            # The dead node's segments are re-read from survivors here
            # (paced at the rebuild rate) while the re-replication write
            # stream spills over to the destination deployment's BN.
            self.health.declare(
                "node-fault", f"d{self.index}", detail=f"rebuild -> d{event.dst}"
            )
            for at_ns, size in spillover_schedule(
                event.size_kb * 1024,
                INJECT_CHUNK_BYTES,
                event.rate_gbps,
                start_ns=self.sim.now,
            ):
                self.sim.schedule_at(at_ns, self._inject, "read", size)
            self.boundary.export(
                "rebuild",
                event.dst,
                {"size_kb": event.size_kb, "rate_gbps": event.rate_gbps},
            )
        elif event.kind == "migration":
            # The guest leaves: its load stops being ours the moment the
            # destination picks it up.  Locally that is only a ledger
            # entry — the paced write burst happens at the destination.
            self.health.declare(
                "migration-out", f"d{self.index}", detail=f"vd -> d{event.dst}"
            )
            self.boundary.export(
                "migration",
                event.dst,
                {
                    "count": event.count,
                    "size_kb": event.size_kb,
                    "gap_ns": event.gap_ns,
                },
            )
        else:  # incident
            scenario = switch_blackhole("spine", event.param, 0)
            scenario.apply(self.deployment.topology)
            self.sim.schedule(
                event.duration_ns, scenario.revert, self.deployment.topology
            )
            self.health.declare(
                "fabric-incident",
                f"d{self.index}",
                detail=f"spine blackhole {event.param:.0%}",
            )
            self.boundary.export(
                "incident",
                event.dst,
                {"param": event.param, "duration_ns": event.duration_ns,
                 "origin": self.index},
            )

    # -- destination-side message effects -------------------------------
    def deliver(self, msg: ShardMessage) -> None:
        """Schedule one inbound fabric message's local effects.  Must be
        called between windows with ``msg.deliver_at_ns >= sim.now``."""
        self.received += 1
        self.sim.schedule_at(msg.deliver_at_ns, self._apply_message, msg)

    def _apply_message(self, msg: ShardMessage) -> None:
        payload = msg.payload
        if msg.kind == "rebuild":
            # Remote re-replication lands as real paced BN writes.
            for at_ns, size in spillover_schedule(
                int(payload["size_kb"]) * 1024,
                INJECT_CHUNK_BYTES,
                float(payload["rate_gbps"]),
                start_ns=self.sim.now,
            ):
                self.sim.schedule_at(at_ns, self._inject, "write", size)
        elif msg.kind == "migration":
            # The migrated guest's write stream resumes here.
            size = int(payload["size_kb"]) * 1024
            gap = int(payload["gap_ns"])
            for k in range(int(payload["count"])):
                self.sim.schedule_at(
                    self.sim.now + k * gap, self._inject, "write", size
                )
        else:  # incident
            self.health.report_remote(
                f"d{msg.src}", msg.kind, detail=f"spine blackhole {payload['param']}"
            )
            scenario = switch_blackhole(
                "spine", float(payload["param"]), 0, salt=f"remote{msg.src}"
            )
            scenario.apply(self.deployment.topology)
            self.sim.schedule(
                int(payload["duration_ns"]), scenario.revert, self.deployment.topology
            )

    def _inject(self, kind: str, size: int) -> None:
        slots = self.vd.size_bytes // size
        offset = (self._inject_cursor % slots) * size
        self._inject_cursor += 1
        self.injected_issued += 1
        if kind == "read":
            io = self.vd.read(offset, size, self._injected_done)
        else:
            io = self.vd.write(offset, size, self._injected_done)
        self.hangs.watch(io)

    def _injected_done(self, io) -> None:
        if io.trace is not None and io.trace.ok:
            self.injected_completed += 1
            self.injected_bytes += io.size_bytes
        else:
            self.injected_failed += 1

    # -- window protocol -------------------------------------------------
    def advance(self, horizon_ns: int) -> List[ShardMessage]:
        """Run to the barrier and return the window's exported messages."""
        self.sim.run_window(horizon_ns)
        return self.boundary.drain()

    def finish(self) -> Dict[str, Any]:
        """The deployment's artifact — simulated data only, so it is
        byte-identical for every shard layout."""
        sketch = QuantileSketch()
        for sample in self.job.latency.samples:
            sketch.add(sample)
        return {
            "index": self.index,
            "stack": self.fleet.deployments[self.index].stack,
            "issued": self.job.issues,
            "completed": self.job.completed,
            "failed": self.job.failed,
            "bytes_moved": self.job.bytes_moved,
            "hangs": self.hangs.hangs,
            "incidents": len(self.health.incidents),
            "remote_incidents": len(self.health.incidents_of("remote-incident")),
            "messages_out": self.boundary.exported,
            "messages_in": self.received,
            "injected_issued": self.injected_issued,
            "injected_completed": self.injected_completed,
            "injected_failed": self.injected_failed,
            "injected_bytes": self.injected_bytes,
            "events_processed": self.sim.events_processed,
            "end_ns": self.sim.now,
            "latency": sketch.to_dict(),
        }


class ShardState:
    """The deployments one worker owns, advanced in fleet-index order."""

    def __init__(self, fleet: FleetSpec, indices: List[int]):
        self.fleet = fleet
        self.indices = list(indices)
        self.sims = {index: DeploymentSim(fleet, index) for index in self.indices}

    def advance(
        self, horizon_ns: int, inbound: List[ShardMessage]
    ) -> List[ShardMessage]:
        """Deliver this window's inbound messages, run every deployment
        to the barrier, and return the union of exported messages.

        ``inbound`` must arrive pre-sorted in the global delivery order
        (:func:`~repro.net.fabric.message_sort_key`); delivering in that
        order keeps each destination simulator's event sequence numbers
        identical across shard layouts.
        """
        for msg in inbound:
            self.sims[msg.dst].deliver(msg)
        out: List[ShardMessage] = []
        for index in self.indices:
            out.extend(self.sims[index].advance(horizon_ns))
        return out

    def finish(self) -> Dict[int, Dict[str, Any]]:
        return {index: self.sims[index].finish() for index in self.indices}

    @property
    def events_processed(self) -> int:
        return sum(sim.sim.events_processed for sim in self.sims.values())


# ----------------------------------------------------------------------
# Multi-process face: the functions a pinned executor worker runs.  The
# registry is per-process state; the coordinator pins every call for a
# given shard id to one worker slot so the lookups always hit.
# ----------------------------------------------------------------------
_WORKER_SHARDS: Dict[int, ShardState] = {}


def worker_create(shard_id: int, spec_json: str, indices: List[int]) -> int:
    """Build shard ``shard_id``'s deployments in this worker process."""
    _WORKER_SHARDS[shard_id] = ShardState(FleetSpec.from_json(spec_json), indices)
    return shard_id


def worker_advance(
    shard_id: int, horizon_ns: int, inbound: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """One window barrier: deliver, advance, return exported messages
    (as dicts — ShardMessage is picklable, but dicts keep the executor
    payloads schema-stable for telemetry and debugging)."""
    state = _WORKER_SHARDS[shard_id]
    out = state.advance(
        horizon_ns, [ShardMessage.from_dict(d) for d in inbound]
    )
    return [msg.to_dict() for msg in out]


def worker_finish(shard_id: int, keep: bool = False) -> Dict[str, Any]:
    """Collect the shard's artifacts (and per-shard totals), releasing
    the shard's simulators unless ``keep``."""
    state = _WORKER_SHARDS[shard_id] if keep else _WORKER_SHARDS.pop(shard_id)
    return {
        "artifacts": state.finish(),
        "events_processed": state.events_processed,
    }


def worker_reset() -> int:
    """Drop every shard registered in this process (test isolation)."""
    count = len(_WORKER_SHARDS)
    _WORKER_SHARDS.clear()
    return count


def make_shard(
    fleet: FleetSpec, indices: List[int], shard_id: Optional[int] = None
) -> ShardState:
    """In-process shard construction (the SerialExecutor path uses the
    worker functions too; this helper serves tests and notebooks)."""
    del shard_id
    return ShardState(fleet, indices)
