"""The fleet coordinator: window barriers, message routing, merging.

:func:`run_fleet` drives a :class:`~repro.dist.fleet.FleetSpec` to its
horizon across *N* shards.  The synchronization protocol is conservative
lookahead: every shard advances one ``window_ns`` at a time, and because
the fabric's minimum crossing latency is at least one window, a shard
can run a full window without observing its peers.  At each barrier the
coordinator collects the window's exported messages, merges them into
one globally-ordered stream (:func:`~repro.net.fabric.message_sort_key`)
and hands each shard the messages due in the *next* window.

Everything that affects the artifacts — message order, delivery times,
per-deployment event streams — is a pure function of the spec, so the
result digest is byte-identical for every shard count.  What sharding
buys is wall-clock: each shard's deployments run in their own process,
so the per-window simulation work proceeds in parallel between barriers.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..lab.spec import canonical_json
from ..net.fabric import ShardMessage, message_sort_key
from ..telemetry.sketch import QuantileSketch
from .executor import Executor, LocalPoolExecutor, SerialExecutor
from .fleet import FLEET_SCHEMA_VERSION, FleetSpec, partition
from .shardsim import worker_advance, worker_create, worker_finish

#: Quantiles surfaced in the fleet summary (from the merged sketch).
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


@dataclass
class FleetResult:
    """One sharded run's outcome: artifacts, digest, performance."""

    spec: FleetSpec
    shards: int
    #: Per-deployment artifacts, ordered by fleet index.
    artifacts: List[Dict[str, Any]]
    #: Fleet-wide rollup (merged sketch quantiles, counters).
    summary: Dict[str, Any]
    #: sha256 over the simulated content — the determinism anchor.
    digest: str
    windows: int
    messages_routed: int
    messages_dropped: int
    events_processed: int
    wall_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.spec.name,
            "spec_digest": self.spec.digest(),
            "shards": self.shards,
            "deployments": len(self.spec.deployments),
            "digest": self.digest,
            "windows": self.windows,
            "messages_routed": self.messages_routed,
            "messages_dropped": self.messages_dropped,
            "events_processed": self.events_processed,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "summary": self.summary,
            "artifacts": self.artifacts,
        }


def _digest(spec: FleetSpec, artifacts: List[Dict[str, Any]],
            routed: int, dropped: int) -> str:
    """Content address of the simulated outcome.  Wall-clock and
    executor details are deliberately excluded — two runs of the same
    spec must collide regardless of machine or shard count."""
    material = {
        "schema": FLEET_SCHEMA_VERSION,
        "spec": spec.digest(),
        "artifacts": artifacts,
        "messages_routed": routed,
        "messages_dropped": dropped,
    }
    return hashlib.sha256(canonical_json(material)).hexdigest()


def _summarize(spec: FleetSpec, artifacts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fleet rollup: counter sums plus merged-latency quantiles.  The
    merge is the telemetry plane's own sketch merge — per-shard sketches
    combine into one fleet sketch without resampling."""
    merged = QuantileSketch.merged(
        QuantileSketch.from_dict(a["latency"]) for a in artifacts
    )
    summary: Dict[str, Any] = {
        "deployments": len(artifacts),
        "issued": sum(a["issued"] for a in artifacts),
        "completed": sum(a["completed"] for a in artifacts),
        "failed": sum(a["failed"] for a in artifacts),
        "bytes_moved": sum(a["bytes_moved"] for a in artifacts),
        "hangs": sum(a["hangs"] for a in artifacts),
        "incidents": sum(a["incidents"] for a in artifacts),
        "remote_incidents": sum(a["remote_incidents"] for a in artifacts),
        "messages_out": sum(a["messages_out"] for a in artifacts),
        "messages_in": sum(a["messages_in"] for a in artifacts),
        "injected_issued": sum(a["injected_issued"] for a in artifacts),
        "injected_completed": sum(a["injected_completed"] for a in artifacts),
        "latency_count": merged.count,
    }
    for q in SUMMARY_QUANTILES:
        key = f"latency_p{int(q * 100)}_ns"
        summary[key] = round(merged.quantile(q), 1) if merged.count else None
    return summary


def run_fleet(
    spec: FleetSpec,
    shards: int = 1,
    executor: Optional[Executor] = None,
    progress: Optional[Callable[[int, int, int], None]] = None,
) -> FleetResult:
    """Run ``spec`` partitioned over ``shards`` worker processes.

    ``executor`` overrides the execution backend (the default is the
    in-process :class:`SerialExecutor` for one shard and a pinned
    :class:`LocalPoolExecutor` otherwise); it must support ``worker=``
    affinity, because shard state lives in the worker processes.
    ``progress`` (if given) is called after every barrier with
    ``(window_index, delivered_count, exported_count)``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    assignment = partition(len(spec.deployments), shards)
    shards = len(assignment)  # clamped to the deployment count
    own_executor = executor is None
    if own_executor:
        executor = SerialExecutor() if shards == 1 else LocalPoolExecutor(shards)
    owner: Dict[int, int] = {}
    for shard_id, indices in enumerate(assignment):
        for index in indices:
            owner[index] = shard_id

    started = time.perf_counter()
    routed = 0
    try:
        spec_json = spec.to_json()
        creates = [
            executor.submit(
                worker_create, shard_id, spec_json, indices,
                worker=shard_id, label=f"create[{shard_id}]",
            )
            for shard_id, indices in enumerate(assignment)
        ]
        executor.wait(creates)
        for future in creates:
            future.result()

        pending: List[ShardMessage] = []
        horizons = spec.windows()
        for window_index, horizon in enumerate(horizons):
            due = sorted(
                (m for m in pending if m.deliver_at_ns <= horizon),
                key=message_sort_key,
            )
            pending = [m for m in pending if m.deliver_at_ns > horizon]
            routed += len(due)
            inbound: List[List[Dict[str, Any]]] = [[] for _ in range(shards)]
            for msg in due:
                inbound[owner[msg.dst]].append(msg.to_dict())
            advances = [
                executor.submit(
                    worker_advance, shard_id, horizon, inbound[shard_id],
                    worker=shard_id, label=f"w{window_index}[{shard_id}]",
                )
                for shard_id in range(shards)
            ]
            executor.wait(advances)
            exported = 0
            for future in advances:
                out = future.result()
                exported += len(out)
                pending.extend(ShardMessage.from_dict(d) for d in out)
            if progress is not None:
                progress(window_index, len(due), exported)
        # Anything still pending was exported too close to the horizon
        # to ever be delivered — dropped, but *counted*, so the digest
        # still observes it.
        dropped = len(pending)

        finishes = [
            executor.submit(
                worker_finish, shard_id,
                worker=shard_id, label=f"finish[{shard_id}]",
            )
            for shard_id in range(shards)
        ]
        executor.wait(finishes)
        merged_artifacts: Dict[int, Dict[str, Any]] = {}
        events_processed = 0
        for future in finishes:
            shard_out = future.result()
            events_processed += shard_out["events_processed"]
            merged_artifacts.update(shard_out["artifacts"])
    finally:
        if own_executor:
            executor.shutdown()

    artifacts = [merged_artifacts[i] for i in sorted(merged_artifacts)]
    if len(artifacts) != len(spec.deployments):  # pragma: no cover - defensive
        raise RuntimeError(
            f"shards returned {len(artifacts)} artifacts for "
            f"{len(spec.deployments)} deployments"
        )
    wall_s = time.perf_counter() - started
    return FleetResult(
        spec=spec,
        shards=shards,
        artifacts=artifacts,
        summary=_summarize(spec, artifacts),
        digest=_digest(spec, artifacts, routed, dropped),
        windows=len(horizons),
        messages_routed=routed,
        messages_dropped=dropped,
        events_processed=events_processed,
        wall_s=wall_s,
    )
