"""Upgrade drills as lab experiment points.

:func:`execute_upgrade_point` is the control-plane twin of
:func:`repro.lab.runner.execute_point`: a pure function from
(:class:`~repro.lab.spec.ExperimentSpec` with an ``upgrade``, seed) to a
JSON-ready artifact.  The artifact carries the same aggregate-facing keys
as a plain workload point (``latency_ns``, ``completed``,
``component_ns``, ...) so ``repro.lab.results.aggregate`` and the result
store work unchanged, plus the rollout-specific ``waves`` and
``migrations`` tables that the CLI and ``bench_upgrade_drill`` render.

Everything in the artifact derives from the simulation, never from wall
clocks, so a drill point is byte-identical under ``canonical_json``
across processes and across serial vs parallel sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..lab.spec import SCHEMA_VERSION, UPGRADE_ORDER, ExperimentSpec
from .cluster import ControlledCluster
from .upgrade import RollingUpgradeEngine, UpgradeResult, WaveReport


def build_cluster(spec: ExperimentSpec, seed: int) -> ControlledCluster:
    """Construct the controlled fleet an upgrade spec describes."""
    plan = spec.upgrade
    if plan is None:
        raise ValueError(f"spec {spec.name!r} has no upgrade plan")
    lo = UPGRADE_ORDER.index(plan.from_stack)
    hi = UPGRADE_ORDER.index(plan.to_stack)
    return ControlledCluster(
        stacks=UPGRADE_ORDER[lo : hi + 1],
        servers=plan.servers,
        seed=seed,
        deployment=dataclasses.replace(spec.deployment, seed=seed),
        vd_size_bytes=spec.vd_size_mb * 1024 * 1024,
        io_gap_ns=plan.io_gap_ns,
        io_size_bytes=plan.io_size_bytes,
        hang_threshold_ns=spec.hang_threshold_ns,
    )


def result_to_artifact(
    spec: ExperimentSpec, seed: int, cluster: ControlledCluster, result: UpgradeResult
) -> Dict[str, Any]:
    """Flatten an :class:`UpgradeResult` into the lab artifact layout."""
    plan = result.plan
    component_ns, component_count = cluster.component_totals()
    return {
        "schema": SCHEMA_VERSION,
        "digest": spec.point_digest(seed),
        "name": spec.name,
        "stack": f"{plan.from_stack}->{plan.to_stack}",
        "seed": seed,
        "workload_mode": "upgrade",
        "issued": result.issued,
        "completed": result.completed,
        "failed": result.failed,
        "deferred": result.deferred,
        "hangs": result.hangs,
        "watched": result.watched,
        "bytes_moved": result.completed * plan.io_size_bytes,
        "duration_ns": plan.total_waves * plan.wave_window_ns,
        "sim_ns": cluster.sim.now,
        "events": cluster.sim.events_processed,
        "latency_ns": [latency for _issue, latency, _srv in cluster.samples],
        "component_ns": component_ns,
        "component_count": component_count,
        "servers": result.servers,
        "migrations": [
            {
                "vd_id": r.vd_id,
                "source_stack": r.source_stack,
                "target_stack": r.target_stack,
                "source_host": r.source_host,
                "target_host": r.target_host,
                "started_ns": r.started_ns,
                "drained_ns": r.drained_ns,
                "attached_ns": r.attached_ns,
                "inflight_at_pause": r.inflight_at_pause,
                "downtime_ns": r.downtime_ns,
            }
            for r in cluster.migration_reports
        ],
        "waves": [
            {
                "index": w.index,
                "kind": w.kind,
                "start_ns": w.start_ns,
                "end_ns": w.end_ns,
                "mix": w.mix,
                "completed": w.completed,
                "mean_latency_ns": w.mean_latency_ns,
                "iops_per_server": w.iops_per_server,
                "availability": w.availability,
                "migrations": w.migrations,
            }
            for w in result.waves
        ],
    }


def execute_upgrade_point(spec: ExperimentSpec, seed: int) -> Dict[str, Any]:
    """Run one rolling-upgrade drill point and return its artifact."""
    cluster = build_cluster(spec, seed)
    engine = RollingUpgradeEngine(cluster, spec.upgrade)
    result = engine.run()
    return result_to_artifact(spec, seed, cluster, result)


def artifact_to_result(spec: ExperimentSpec, artifact: Dict[str, Any]) -> UpgradeResult:
    """Rehydrate an :class:`UpgradeResult` from a stored artifact.

    The inverse of :func:`result_to_artifact` (modulo per-migration
    detail), so cached drill points can be re-validated and re-rendered
    without re-simulating.
    """
    plan = spec.upgrade
    if plan is None:
        raise ValueError(f"spec {spec.name!r} has no upgrade plan")
    waves = [
        WaveReport(
            index=w["index"],
            kind=w["kind"],
            start_ns=w["start_ns"],
            end_ns=w["end_ns"],
            mix=dict(w["mix"]),
            completed=w["completed"],
            mean_latency_ns=w["mean_latency_ns"],
            iops_per_server=w["iops_per_server"],
            availability=w["availability"],
            migrations=w["migrations"],
        )
        for w in artifact["waves"]
    ]
    return UpgradeResult(
        plan=plan,
        servers=artifact["servers"],
        waves=waves,
        issued=artifact["issued"],
        completed=artifact["completed"],
        failed=artifact["failed"],
        deferred=artifact["deferred"],
        hangs=artifact["hangs"],
        watched=artifact["watched"],
        migrations=len(artifact["migrations"]),
    )
