"""Cluster health monitoring: heartbeats and hang signals become incidents.

The paper's availability story (§5, Table 2, Figure 8) starts with
*detection*: block servers, BN peers and agents exchange heartbeats, and
an I/O with no response for too long is itself a health signal.  The
:class:`HealthMonitor` reproduces that layer inside the simulation — it
sweeps registered liveness probes on a fixed cadence, counts consecutive
misses, and declares an :class:`Incident` once the configurable miss
threshold is crossed.  Subscribers (e.g. the failover orchestrator) react
to incidents; everything runs as ordinary simulator events, so detection
latency is measured in simulated time and every run is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..agent.base import IoRequest
from ..sim.engine import Simulator
from ..sim.events import MS, format_ns

HEARTBEAT_LOSS = "heartbeat-loss"
IO_HANG = "io-hang"
TELEMETRY_ALERT = "telemetry-alert"
REMOTE_INCIDENT = "remote-incident"


@dataclass(frozen=True)
class HealthPolicy:
    """Detection thresholds of the monitor.

    The defaults follow common lease/heartbeat practice (a miss threshold
    of 3 on a 100ms cadence puts detection at ~300ms, well inside the 1s
    hang SLO that Table 2 measures against).
    """

    heartbeat_interval_ns: int = 100 * MS
    miss_threshold: int = 3

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ns <= 0:
            raise ValueError(
                f"heartbeat interval must be positive: {self.heartbeat_interval_ns}"
            )
        if self.miss_threshold < 1:
            raise ValueError(f"miss threshold must be >= 1: {self.miss_threshold}")

    @property
    def detection_ns(self) -> int:
        """Worst-case detection latency for a clean fail-stop."""
        return self.heartbeat_interval_ns * self.miss_threshold


@dataclass
class Incident:
    """One declared health incident."""

    incident_id: int
    kind: str  # HEARTBEAT_LOSS | IO_HANG
    node: str  # server name, or VD id for I/O-hang incidents
    detected_ns: int
    detail: str = ""
    resolved_ns: Optional[int] = None

    @property
    def open(self) -> bool:
        return self.resolved_ns is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"resolved@{format_ns(self.resolved_ns)}"
        return (
            f"<Incident #{self.incident_id} {self.kind} {self.node} "
            f"@{format_ns(self.detected_ns)} {state}>"
        )


class HealthMonitor:
    """Sweeps liveness probes and turns misses + hang signals into incidents."""

    def __init__(self, sim: Simulator, policy: HealthPolicy = HealthPolicy()):
        self.sim = sim
        self.policy = policy
        self.incidents: List[Incident] = []
        self.sweeps = 0
        self._probes: Dict[str, Callable[[], bool]] = {}
        self._misses: Dict[str, int] = {}
        self._open: Dict[str, Incident] = {}
        #: Open I/O-hang incidents by io_id, resolved on late completion.
        self._open_hangs: Dict[int, Incident] = {}
        self._subscribers: List[Callable[[Incident], None]] = []
        self._resolved_subscribers: List[Callable[[Incident], None]] = []
        self._started = False
        self._stop_ns: Optional[int] = None

    # ------------------------------------------------------------------
    def register(self, name: str, probe: Callable[[], bool]) -> None:
        """Track one node; ``probe()`` is its heartbeat (True = alive)."""
        if name in self._probes:
            raise ValueError(f"node {name!r} already registered")
        self._probes[name] = probe
        self._misses[name] = 0

    def subscribe(self, callback: Callable[[Incident], None]) -> None:
        self._subscribers.append(callback)

    def subscribe_resolved(self, callback: Callable[[Incident], None]) -> None:
        """Observe incident resolutions (heartbeat back, hung I/O
        completed, alert cleared) — the hook the failover orchestrator
        uses to lift a recovered node's quarantine."""
        self._resolved_subscribers.append(callback)

    def start(self, until_ns: Optional[int] = None) -> None:
        """Begin sweeping; ``until_ns`` bounds the last sweep so the event
        heap can drain at the end of an experiment."""
        if self._started:
            raise RuntimeError("health monitor already started")
        self._started = True
        self._stop_ns = until_ns
        self.sim.schedule(self.policy.heartbeat_interval_ns, self._sweep)

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        self.sweeps += 1
        for name in sorted(self._probes):
            if bool(self._probes[name]()):
                self._misses[name] = 0
                opened = self._open.pop(name, None)
                if opened is not None:
                    self.resolve(opened)
            else:
                self._misses[name] += 1
                if (
                    self._misses[name] >= self.policy.miss_threshold
                    and name not in self._open
                ):
                    self._open[name] = self.declare(
                        HEARTBEAT_LOSS,
                        name,
                        detail=f"{self._misses[name]} heartbeats missed",
                    )
        next_ns = self.sim.now + self.policy.heartbeat_interval_ns
        if self._stop_ns is None or next_ns <= self._stop_ns:
            self.sim.schedule(self.policy.heartbeat_interval_ns, self._sweep)

    # ------------------------------------------------------------------
    def declare(self, kind: str, node: str, detail: str = "") -> Incident:
        """Declare an incident directly (also used by the sweep itself)."""
        incident = Incident(
            incident_id=len(self.incidents) + 1,
            kind=kind,
            node=node,
            detected_ns=self.sim.now,
            detail=detail,
        )
        self.incidents.append(incident)
        for subscriber in self._subscribers:
            subscriber(incident)
        return incident

    def resolve(self, incident: Incident, at_ns: Optional[int] = None) -> None:
        """Resolve one incident and notify resolution subscribers.

        ``at_ns`` overrides the resolution timestamp (e.g. the telemetry
        evaluator resolves at snapshot time, not evaluation time).
        Idempotent — resolving a closed incident is a no-op."""
        if not incident.open:
            return
        incident.resolved_ns = self.sim.now if at_ns is None else at_ns
        for subscriber in self._resolved_subscribers:
            subscriber(incident)

    def report_hang(self, io: IoRequest) -> Incident:
        """Hang-signal inlet — wire as ``IoHangMonitor(on_hang=...)``."""
        incident = self.declare(
            IO_HANG, io.vd_id, detail=f"io#{io.io_id} {io.kind} unanswered"
        )
        self._open_hangs[io.io_id] = incident
        return incident

    def note_io_completed(self, io: IoRequest) -> None:
        """Completion inlet: a previously-hung I/O finally answered, so
        its incident's cause has cleared — auto-resolve it.  Safe to call
        for every completion; I/Os without an open hang incident no-op."""
        incident = self._open_hangs.pop(io.io_id, None)
        if incident is not None:
            self.resolve(incident)

    def report_alert(self, source: str, detail: str = "") -> Incident:
        """Telemetry-alert inlet — the `repro.telemetry` AlertEvaluator
        declares each fired rule here, so failover/upgrade machinery
        reacts to metric thresholds exactly as it does to heartbeats."""
        return self.declare(TELEMETRY_ALERT, source, detail=detail)

    def report_remote(self, origin: str, kind: str, detail: str = "") -> Incident:
        """Cross-shard inlet: an incident routed in from another
        deployment's shard (`repro.dist`).  ``origin`` names the remote
        deployment; ``kind`` is the remote event kind.  Declared under
        :data:`REMOTE_INCIDENT` so local sweep logic never confuses a
        neighbour's trouble with a local heartbeat loss."""
        return self.declare(REMOTE_INCIDENT, origin, detail=f"{kind}: {detail}")

    def open_hangs(self) -> Dict[int, Incident]:
        """Open I/O-hang incidents keyed by the hung I/O's id (copy)."""
        return dict(self._open_hangs)

    # ------------------------------------------------------------------
    def open_incidents(self) -> List[Incident]:
        return [i for i in self.incidents if i.open]

    def incidents_of(self, kind: str) -> List[Incident]:
        return [i for i in self.incidents if i.kind == kind]
