"""The ``python -m repro upgrade`` subcommand.

Runs a rolling hot-upgrade drill — Figure 7 in miniature — through the
lab runner, so results are cached content-addressed and ``REPRO_JOBS``
parallelism applies to multi-seed runs.  Typical usage::

    python -m repro upgrade --from kernel --to luna --seed 42
    python -m repro upgrade --from kernel --to solar --servers 12 --waves 6
    python -m repro upgrade --seeds 0-3 --jobs 4 --json

Prints a per-wave table (stack mix, completed I/Os, fleet-average
latency, per-server IOPS, availability) and exits 2 if any I/O hung
longer than the threshold — the Table 2 "unanswered >= 1s" contract.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List

from ..lab.cli import _format_table, parse_seeds
from ..lab.runner import default_jobs, run_sweep
from ..lab.spec import UPGRADE_ORDER, ExperimentSpec, UpgradeSpec
from ..lab.store import DEFAULT_STORE_DIR, ResultStore
from ..lab.telemetry import printer
from ..sim import MS, US
from .cluster import FLEET_DEPLOYMENT
from .drill import artifact_to_result
from .upgrade import UpgradeResult, check_rollout_consistency

WAVE_HEADERS = (
    "wave", "kind", "mix", "ios", "mean us", "IOPS/srv", "availability", "migr",
)


def _mix_cell(mix) -> str:
    parts = [
        f"{stack}:{share:.0%}"
        for stack, share in sorted(mix.items())
        if share > 0
    ]
    return " ".join(parts) if parts else "-"


def wave_rows(result: UpgradeResult) -> List[List[str]]:
    return [
        [
            str(w.index),
            w.kind,
            _mix_cell(w.mix),
            str(w.completed),
            f"{w.mean_latency_ns / 1000:.1f}",
            f"{w.iops_per_server:.0f}",
            f"{w.availability:.4%}",
            str(w.migrations),
        ]
        for w in result.waves
    ]


def add_upgrade_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    p = sub.add_parser(
        "upgrade",
        help="rolling hot-upgrade drill (exits 2 if I/Os hang)",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--from", dest="from_stack", choices=UPGRADE_ORDER[:-1],
                   default="kernel", help="stack the fleet starts on")
    p.add_argument("--to", dest="to_stack", choices=UPGRADE_ORDER[1:],
                   default="luna", help="stack the fleet ends on")
    p.add_argument("--servers", type=int, default=8)
    p.add_argument("--waves", type=int, default=4,
                   help="contiguous server groups per hop (default: 4)")
    p.add_argument("--wave-ms", type=float, default=5.0,
                   help="measurement window per wave in simulated ms")
    p.add_argument("--io-gap-us", type=float, default=500.0,
                   help="per-server paced-writer gap in us (default: 500)")
    p.add_argument("--seeds", "--seed", dest="seeds", default="0",
                   help="seed list/range, e.g. 42 or 0-3 (default: 0)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: $REPRO_JOBS or 1)")
    p.add_argument("--vd-size-mb", type=int, default=64)
    p.add_argument("--name", default="upgrade")
    p.add_argument("--store", default=DEFAULT_STORE_DIR,
                   help=f"result store directory (default: {DEFAULT_STORE_DIR})")
    p.add_argument("--no-store", action="store_true",
                   help="do not read or write the result store")
    p.add_argument("--force", action="store_true",
                   help="re-simulate even when cached results exist")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit a machine-readable JSON summary")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")
    return p


def build_upgrade_spec(args: argparse.Namespace) -> ExperimentSpec:
    plan = UpgradeSpec(
        from_stack=args.from_stack,
        to_stack=args.to_stack,
        servers=args.servers,
        waves=args.waves,
        wave_window_ns=int(args.wave_ms * MS),
        io_gap_ns=int(args.io_gap_us * US),
    )
    return ExperimentSpec(
        deployment=dataclasses.replace(FLEET_DEPLOYMENT, stack=plan.to_stack),
        upgrade=plan,
        seeds=tuple(parse_seeds(args.seeds)),
        name=f"{args.name}/{plan.from_stack}-to-{plan.to_stack}",
        vd_size_mb=args.vd_size_mb,
    )


def cmd_upgrade(args: argparse.Namespace) -> int:
    try:
        spec = build_upgrade_spec(args)
    except ValueError as exc:
        print(f"upgrade: {exc}", file=sys.stderr)
        return 2
    store = None if args.no_store else ResultStore(args.store)
    progress = None if (args.quiet or args.as_json) else printer()
    try:
        sweep = run_sweep(
            spec,
            jobs=args.jobs if args.jobs is not None else default_jobs(),
            store=store,
            force=args.force,
            progress=progress,
        )
    except RuntimeError as exc:
        print(f"upgrade: {exc}", file=sys.stderr)
        return 1

    results = [
        (seed, artifact_to_result(spec, artifact))
        for (_spec, seed, _digest), artifact in zip(sweep.points, sweep.artifacts)
    ]
    problems = [
        f"seed {seed}: {problem}"
        for seed, result in results
        for problem in check_rollout_consistency(result)
    ]
    hangs = sum(result.hangs for _seed, result in results)

    if args.as_json:
        print(json.dumps({
            "plan": dataclasses.asdict(spec.upgrade),
            "digests": sweep.digests(),
            "hangs": hangs,
            "consistent": not problems,
            "problems": problems,
            "seeds": [
                {
                    "seed": seed,
                    "issued": result.issued,
                    "completed": result.completed,
                    "failed": result.failed,
                    "deferred": result.deferred,
                    "hangs": result.hangs,
                    "availability_floor": result.availability_floor(),
                    "terminal_mix": result.terminal_mix(),
                    "waves": [
                        {
                            "index": w.index,
                            "kind": w.kind,
                            "mix": w.mix,
                            "completed": w.completed,
                            "mean_latency_ns": w.mean_latency_ns,
                            "iops_per_server": w.iops_per_server,
                            "availability": w.availability,
                            "migrations": w.migrations,
                        }
                        for w in result.waves
                    ],
                }
                for seed, result in results
            ],
        }, indent=2, sort_keys=True))
    else:
        for seed, result in results:
            plan = result.plan
            print()
            print(f"rolling upgrade {plan.from_stack} -> {plan.to_stack}: "
                  f"{plan.servers} servers, {plan.waves} waves/hop, "
                  f"{plan.wave_window_ns / MS:g}ms windows, seed {seed}")
            print(_format_table(WAVE_HEADERS, wave_rows(result)))
            first, last = result.waves[0], result.waves[-1]
            print(f"fleet latency {first.mean_latency_ns / 1000:.1f}us -> "
                  f"{last.mean_latency_ns / 1000:.1f}us, "
                  f"availability floor {result.availability_floor():.4%}, "
                  f"{result.migrations} migrations, "
                  f"{result.deferred} I/Os deferred, {result.hangs} hung")
        print()
        if problems:
            for problem in problems:
                print(f"upgrade: inconsistent with analytic rollout: {problem}",
                      file=sys.stderr)
        if store is not None:
            print(f"artifacts: {store.root} ({store.writes} written, "
                  f"{store.hits} cache hits)")
    # Scriptable contract, same as `failover`: nonzero when I/Os hung.
    return 2 if hangs else 0
