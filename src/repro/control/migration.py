"""VD live migration: pause → drain → re-attach, with phase accounting.

The paper's hot-upgrade mechanism (§5) moves a virtual disk's frontend
between FN stacks without failing guest I/O: admission stops, in-flight
I/Os drain, and the VD re-attaches through the new stack.  The guest
perceives only a short submission stall — never an error — so the Table 2
metric (I/Os unanswered ≥ 1s) stays at zero as long as the drain is fast.

:class:`LiveMigration` reproduces those phases as simulator events and
reports per-phase latency, which the rolling-upgrade engine aggregates
into per-wave availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..ebs.deployment import EbsDeployment
from ..ebs.virtual_disk import VirtualDisk
from ..sim.engine import Simulator
from ..sim.events import US

#: Default control-plane cost of re-attaching a VD through a new frontend
#: stack (table installation + NVMe namespace re-plumb).  A tunable
#: control constant, not a calibrated profile value.
DEFAULT_ATTACH_NS = 500 * US

PHASES = ("pause", "drain", "attach")


@dataclass
class MigrationReport:
    """Timeline of one completed VD migration."""

    vd_id: str
    source_host: str
    target_host: str
    source_stack: str
    target_stack: str
    started_ns: int
    drained_ns: int = 0
    attached_ns: int = 0
    inflight_at_pause: int = 0

    @property
    def drain_ns(self) -> int:
        return self.drained_ns - self.started_ns

    @property
    def attach_ns(self) -> int:
        return self.attached_ns - self.drained_ns

    @property
    def downtime_ns(self) -> int:
        """Guest-visible submission stall: pause to re-attach."""
        return self.attached_ns - self.started_ns

    def phase_ns(self) -> Dict[str, int]:
        """Per-phase latency; ``pause`` is the instantaneous marker."""
        return {"pause": 0, "drain": self.drain_ns, "attach": self.attach_ns}


class LiveMigration:
    """Executes pause → drain → attach sequences on one simulator."""

    def __init__(self, sim: Simulator, attach_latency_ns: int = DEFAULT_ATTACH_NS):
        if attach_latency_ns < 0:
            raise ValueError(f"negative attach latency: {attach_latency_ns}")
        self.sim = sim
        self.attach_latency_ns = attach_latency_ns
        self.completed: int = 0

    def migrate(
        self,
        vd: VirtualDisk,
        target: EbsDeployment,
        target_host: str,
        on_done: Callable[[VirtualDisk, MigrationReport], None],
    ) -> MigrationReport:
        """Move ``vd`` onto ``target_host`` of the ``target`` deployment.

        The target may be the same deployment (host-to-host migration) or
        a different FN stack sharing the simulator (hot upgrade).  Calls
        ``on_done(new_vd, report)`` when the new attachment is live.
        """
        if vd.detached:
            raise ValueError(f"VD {vd.vd_id!r} is already detached")
        if target_host not in target.compute_servers:
            raise KeyError(
                f"{target_host!r} is not a compute host of the target; "
                f"options: {target.compute_host_names()}"
            )
        report = MigrationReport(
            vd_id=vd.vd_id,
            source_host=vd.host_name,
            target_host=target_host,
            source_stack=vd.deployment.spec.stack,
            target_stack=target.spec.stack,
            started_ns=self.sim.now,
            inflight_at_pause=len(vd.inflight),
        )
        vd.pause()
        vd.when_drained(lambda: self._drained(vd, target, target_host, report, on_done))
        return report

    # ------------------------------------------------------------------
    def _drained(
        self,
        vd: VirtualDisk,
        target: EbsDeployment,
        target_host: str,
        report: MigrationReport,
        on_done: Callable[[VirtualDisk, MigrationReport], None],
    ) -> None:
        report.drained_ns = self.sim.now
        self.sim.schedule(
            self.attach_latency_ns,
            self._attach, vd, target, target_host, report, on_done,
        )

    def _attach(
        self,
        vd: VirtualDisk,
        target: EbsDeployment,
        target_host: str,
        report: MigrationReport,
        on_done: Callable[[VirtualDisk, MigrationReport], None],
    ) -> None:
        vd.detach()
        new_vd = VirtualDisk(
            target,
            vd.vd_id,
            target_host,
            vd.size_bytes,
            # Re-visiting a deployment the VD lived on before (e.g. a
            # rollback) must not re-provision its segments.
            provision=not target.has_vd(vd.vd_id),
        )
        target.refresh_vd(vd.vd_id)
        report.attached_ns = self.sim.now
        self.completed += 1
        on_done(new_vd, report)
