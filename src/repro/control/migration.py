"""VD live migration: pause → drain → re-attach, with phase accounting.

The paper's hot-upgrade mechanism (§5) moves a virtual disk's frontend
between FN stacks without failing guest I/O: admission stops, in-flight
I/Os drain, and the VD re-attaches through the new stack.  The guest
perceives only a short submission stall — never an error — so the Table 2
metric (I/Os unanswered ≥ 1s) stays at zero as long as the drain is fast.

:class:`LiveMigration` reproduces those phases as simulator events and
reports per-phase latency, which the rolling-upgrade engine aggregates
into per-wave availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..ebs.deployment import EbsDeployment
from ..ebs.virtual_disk import VdStateError, VirtualDisk
from ..sim.engine import Simulator
from ..sim.events import US, format_ns

#: Default control-plane cost of re-attaching a VD through a new frontend
#: stack (table installation + NVMe namespace re-plumb).  A tunable
#: control constant, not a calibrated profile value.
DEFAULT_ATTACH_NS = 500 * US

PHASES = ("pause", "drain", "attach")


class MigrationAbortedError(VdStateError):
    """A migration drain exceeded its timeout with no abort handler.

    Raised (inside the simulation event) when a fault strands in-flight
    I/O mid-drain and the caller gave no ``on_abort`` — the typed surface
    for what used to be a silent wedge: a VD paused forever waiting for
    an I/O that a dead node will never answer.
    """


@dataclass
class MigrationReport:
    """Timeline of one completed VD migration."""

    vd_id: str
    source_host: str
    target_host: str
    source_stack: str
    target_stack: str
    started_ns: int
    drained_ns: int = 0
    attached_ns: int = 0
    inflight_at_pause: int = 0
    #: Set when the drain timed out (fault mid-drain) and the migration
    #: was rolled back: the source VD resumed, nothing re-attached.
    aborted: bool = False
    aborted_ns: int = 0

    @property
    def drain_ns(self) -> int:
        return self.drained_ns - self.started_ns

    @property
    def attach_ns(self) -> int:
        return self.attached_ns - self.drained_ns

    @property
    def downtime_ns(self) -> int:
        """Guest-visible submission stall: pause to re-attach."""
        return self.attached_ns - self.started_ns

    def phase_ns(self) -> Dict[str, int]:
        """Per-phase latency; ``pause`` is the instantaneous marker."""
        return {"pause": 0, "drain": self.drain_ns, "attach": self.attach_ns}


class LiveMigration:
    """Executes pause → drain → attach sequences on one simulator.

    ``drain_timeout_ns`` bounds the drain phase: a fault that strands
    in-flight I/O on the source must not leave the VD wedged half-migrated
    (paused forever, guest stalled).  When the timeout fires before the
    drain completes, the migration aborts — the source VD resumes
    admission and ``on_abort`` (or :class:`MigrationAbortedError`)
    surfaces the failure as a typed event the control plane can react to.
    ``None`` disables the timeout (the pre-chaos behavior).
    """

    def __init__(
        self,
        sim: Simulator,
        attach_latency_ns: int = DEFAULT_ATTACH_NS,
        drain_timeout_ns: Optional[int] = None,
    ):
        if attach_latency_ns < 0:
            raise ValueError(f"negative attach latency: {attach_latency_ns}")
        if drain_timeout_ns is not None and drain_timeout_ns <= 0:
            raise ValueError(f"drain timeout must be positive: {drain_timeout_ns}")
        self.sim = sim
        self.attach_latency_ns = attach_latency_ns
        self.drain_timeout_ns = drain_timeout_ns
        self.completed: int = 0
        self.aborted: int = 0

    def migrate(
        self,
        vd: VirtualDisk,
        target: EbsDeployment,
        target_host: str,
        on_done: Callable[[VirtualDisk, MigrationReport], None],
        on_abort: Optional[Callable[[VirtualDisk, MigrationReport], None]] = None,
    ) -> MigrationReport:
        """Move ``vd`` onto ``target_host`` of the ``target`` deployment.

        The target may be the same deployment (host-to-host migration) or
        a different FN stack sharing the simulator (hot upgrade).  Calls
        ``on_done(new_vd, report)`` when the new attachment is live, or
        ``on_abort(vd, report)`` if the drain timed out (the source VD is
        already resumed by then).
        """
        if vd.detached:
            raise ValueError(f"VD {vd.vd_id!r} is already detached")
        if target_host not in target.compute_servers:
            raise KeyError(
                f"{target_host!r} is not a compute host of the target; "
                f"options: {target.compute_host_names()}"
            )
        report = MigrationReport(
            vd_id=vd.vd_id,
            source_host=vd.host_name,
            target_host=target_host,
            source_stack=vd.deployment.spec.stack,
            target_stack=target.spec.stack,
            started_ns=self.sim.now,
            inflight_at_pause=len(vd.inflight),
        )
        vd.pause()
        timer = None
        if self.drain_timeout_ns is not None:
            timer = self.sim.schedule(
                self.drain_timeout_ns, self._drain_timeout, vd, report, on_abort
            )
        vd.when_drained(
            lambda: self._drained(vd, target, target_host, report, on_done, timer)
        )
        return report

    # ------------------------------------------------------------------
    def _drain_timeout(
        self,
        vd: VirtualDisk,
        report: MigrationReport,
        on_abort: Optional[Callable[[VirtualDisk, MigrationReport], None]],
    ) -> None:
        if report.drained_ns or report.aborted:
            return  # drained in time; stale timer
        report.aborted = True
        report.aborted_ns = self.sim.now
        self.aborted += 1
        # Roll back: re-admit guest I/O on the source.  The stuck I/Os
        # stay in flight (the hang monitor owns that story); the guest
        # sees a bounded stall instead of an indefinite wedge.
        vd.resume()
        if on_abort is not None:
            on_abort(vd, report)
        else:
            raise MigrationAbortedError(
                f"migration of VD {report.vd_id!r} "
                f"{report.source_stack}->{report.target_stack} aborted: "
                f"{len(vd.inflight)} I/O(s) still in flight after "
                f"{format_ns(self.drain_timeout_ns)} drain timeout"
            )

    def _drained(
        self,
        vd: VirtualDisk,
        target: EbsDeployment,
        target_host: str,
        report: MigrationReport,
        on_done: Callable[[VirtualDisk, MigrationReport], None],
        timer,
    ) -> None:
        if report.aborted:
            return  # the drain finally completed, but the abort won
        if timer is not None:
            timer.cancel()
        report.drained_ns = self.sim.now
        self.sim.schedule(
            self.attach_latency_ns,
            self._attach, vd, target, target_host, report, on_done,
        )

    def _attach(
        self,
        vd: VirtualDisk,
        target: EbsDeployment,
        target_host: str,
        report: MigrationReport,
        on_done: Callable[[VirtualDisk, MigrationReport], None],
    ) -> None:
        vd.detach()
        new_vd = VirtualDisk(
            target,
            vd.vd_id,
            target_host,
            vd.size_bytes,
            # Re-visiting a deployment the VD lived on before (e.g. a
            # rollback) must not re-provision its segments.
            provision=not target.has_vd(vd.vd_id),
        )
        target.refresh_vd(vd.vd_id)
        report.attached_ns = self.sim.now
        self.completed += 1
        on_done(new_vd, report)
