"""Rolling hot-upgrades: the fleet's kernel → LUNA → SOLAR evolution.

Figure 7 is the paper's operational headline: the fleet was re-stacked in
waves, under live traffic, with availability held inside SLO the whole
time.  :class:`RollingUpgradeEngine` reproduces that rollout inside the
simulation: it partitions a :class:`~repro.control.cluster.ControlledCluster`
into contiguous waves and live-migrates each wave's servers one FN-stack
hop at a time, bracketed by baseline and settle measurement windows.

The result is a *simulated* Figure 7 — per-wave stack mix, fleet-average
latency, per-server IOPS, and availability — which
:func:`check_rollout_consistency` validates against the analytic
:data:`~repro.ebs.evolution.DEFAULT_ROLLOUT` trend (old-stack share only
shrinks, new-stack share only grows, latency only improves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ebs.evolution import DEFAULT_ROLLOUT, QUARTERS
from ..lab.spec import UpgradeSpec
from .cluster import ControlledCluster, LogicalServer

BASELINE = "baseline"
UPGRADE = "upgrade"
SETTLE = "settle"


@dataclass(frozen=True)
class WaveReport:
    """One measurement window of the rollout."""

    index: int
    kind: str  # BASELINE | UPGRADE | SETTLE
    start_ns: int
    end_ns: int
    #: Fleet stack mix at the window's end.
    mix: Dict[str, float]
    completed: int
    mean_latency_ns: float
    iops_per_server: float
    availability: float
    migrations: int

    @property
    def window_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class UpgradeResult:
    """Everything a finished rolling upgrade knows."""

    plan: UpgradeSpec
    servers: int
    waves: List[WaveReport]
    issued: int
    completed: int
    failed: int
    deferred: int
    hangs: int
    watched: int
    migrations: int

    def terminal_mix(self) -> Dict[str, float]:
        return dict(self.waves[-1].mix)

    def latency_curve_ns(self) -> List[float]:
        return [w.mean_latency_ns for w in self.waves]

    def availability_floor(self) -> float:
        return min(w.availability for w in self.waves)


def partition_waves(servers: List[LogicalServer], waves: int) -> List[List[LogicalServer]]:
    """Split the fleet into ``waves`` contiguous, near-equal groups."""
    if not 1 <= waves <= len(servers):
        raise ValueError(f"waves must be in [1, {len(servers)}], got {waves}")
    base, extra = divmod(len(servers), waves)
    groups: List[List[LogicalServer]] = []
    start = 0
    for g in range(waves):
        size = base + (1 if g < extra else 0)
        groups.append(servers[start : start + size])
        start += size
    return groups


class RollingUpgradeEngine:
    """Drives one :class:`UpgradeSpec` plan over a controlled cluster."""

    def __init__(self, cluster: ControlledCluster, plan: UpgradeSpec):
        missing = {
            stack
            for hop in plan.hops()
            for stack in hop
            if stack not in cluster.deployments
        }
        if missing:
            raise ValueError(
                f"cluster lacks deployments for {sorted(missing)}; "
                f"has {sorted(cluster.deployments)}"
            )
        if len(cluster.servers) != plan.servers:
            raise ValueError(
                f"plan expects {plan.servers} servers, cluster has "
                f"{len(cluster.servers)}"
            )
        self.cluster = cluster
        self.plan = plan
        self._mixes: List[Optional[Dict[str, float]]] = []
        self._migration_starts: List[int] = []

    # ------------------------------------------------------------------
    def run(self) -> UpgradeResult:
        """Schedule the whole rollout, run the simulation to drain, and
        report.  Running to drain (no ``until``) lets every armed hang
        check fire, so ``hangs == 0`` is a real claim, not an artifact of
        a short window."""
        plan = self.plan
        cluster = self.cluster
        window = plan.wave_window_ns
        total = plan.total_waves
        end_ns = total * window
        self._mixes = [None] * total
        self._migration_starts = [0] * total

        wave_index = plan.baseline_waves
        for _from_stack, to_stack in plan.hops():
            groups = partition_waves(cluster.servers, plan.waves)
            for g, group in enumerate(groups):
                start = (wave_index + g) * window
                for j, server in enumerate(group):
                    at = start + j * plan.stagger_ns
                    self._migration_starts[(wave_index + g)] += 1
                    cluster.sim.schedule_at(at, self._migrate, server, to_stack)
            wave_index += plan.waves

        for w in range(total):
            cluster.sim.schedule_at((w + 1) * window, self._snapshot_mix, w)

        cluster.start_load(until_ns=end_ns)
        cluster.sim.run()
        return self._report(end_ns)

    def _migrate(self, server: LogicalServer, to_stack: str) -> None:
        if server.stack == to_stack:  # pragma: no cover - defensive
            return
        self.cluster.upgrade_server(server, to_stack)

    def _snapshot_mix(self, wave: int) -> None:
        self._mixes[wave] = self.cluster.mix()

    # ------------------------------------------------------------------
    def _report(self, end_ns: int) -> UpgradeResult:
        plan = self.plan
        cluster = self.cluster
        window = plan.wave_window_ns
        total = plan.total_waves
        per_wave_lat: List[List[int]] = [[] for _ in range(total)]
        for issue_ns, latency_ns, _server in cluster.samples:
            w = issue_ns // window
            if w < total:
                per_wave_lat[w].append(latency_ns)

        waves: List[WaveReport] = []
        upgrade_span = len(plan.hops()) * plan.waves
        for w in range(total):
            if w < plan.baseline_waves:
                kind = BASELINE
            elif w < plan.baseline_waves + upgrade_span:
                kind = UPGRADE
            else:
                kind = SETTLE
            lats = per_wave_lat[w]
            start, end = w * window, (w + 1) * window
            waves.append(
                WaveReport(
                    index=w,
                    kind=kind,
                    start_ns=start,
                    end_ns=end,
                    mix=self._mixes[w] or cluster.mix(),
                    completed=len(lats),
                    mean_latency_ns=(sum(lats) / len(lats)) if lats else 0.0,
                    iops_per_server=len(lats)
                    / len(cluster.servers)
                    / (window / 1e9),
                    availability=cluster.availability(start, end),
                    migrations=self._migration_starts[w],
                )
            )
        return UpgradeResult(
            plan=plan,
            servers=len(cluster.servers),
            waves=waves,
            issued=cluster.issued,
            completed=cluster.completed,
            failed=cluster.failed,
            deferred=cluster.deferred,
            hangs=cluster.hang_monitor.hangs,
            watched=cluster.hang_monitor.watched,
            migrations=len(cluster.migration_reports),
        )


# ----------------------------------------------------------------------
# Validation against the analytic rollout
# ----------------------------------------------------------------------
def analytic_share_trend(
    stack: str, rollout: Dict[str, Dict[str, float]] = DEFAULT_ROLLOUT
) -> List[float]:
    """One stack's fleet share, quarter by quarter, from the analytic table."""
    return [rollout[q].get(stack, 0.0) for q in QUARTERS]


def check_rollout_consistency(
    result: UpgradeResult,
    latency_tolerance: float = 0.02,
) -> List[str]:
    """Compare the simulated rollout's shape with the analytic
    :data:`DEFAULT_ROLLOUT` trend.  Returns human-readable violations
    (empty list = consistent).

    The analytic table's invariants — the old stack's share only shrinks,
    newer stacks never regress, and the blended fleet latency only
    improves — must hold for the simulated waves too.
    ``latency_tolerance`` forgives sub-percent measurement noise between
    waves of identical mix.
    """
    plan = result.plan
    problems: List[str] = []
    from_shares = [w.mix.get(plan.from_stack, 0.0) for w in result.waves]
    to_shares = [w.mix.get(plan.to_stack, 0.0) for w in result.waves]
    if any(b > a + 1e-9 for a, b in zip(from_shares, from_shares[1:])):
        problems.append(f"{plan.from_stack} share regressed: {from_shares}")
    if any(b < a - 1e-9 for a, b in zip(to_shares, to_shares[1:])):
        problems.append(f"{plan.to_stack} share shrank: {to_shares}")
    if abs(from_shares[-1]) > 1e-9:
        problems.append(
            f"terminal {plan.from_stack} share is {from_shares[-1]}, "
            "but the analytic rollout retires the old stack completely"
        )
    if abs(to_shares[-1] - 1.0) > 1e-9:
        problems.append(f"terminal {plan.to_stack} share is {to_shares[-1]}, not 1.0")
    lats = result.latency_curve_ns()
    for a, b in zip(lats, lats[1:]):
        if b > a * (1 + latency_tolerance):
            problems.append(
                f"fleet latency regressed between waves: {a:.0f}ns -> {b:.0f}ns"
            )
            break
    if lats and lats[-1] >= lats[0]:
        problems.append(
            f"no net latency improvement: {lats[0]:.0f}ns -> {lats[-1]:.0f}ns"
        )
    return problems
