"""repro.control — the cluster control plane, inside the simulation.

The data-plane packages (`repro.ebs`, `repro.net`, `repro.storage`) model
what the paper's §3–4 build; this package models what §5 *operates*: a
deterministic control plane that watches the fleet, reacts to failures,
live-migrates virtual disks, and rolls stack upgrades through waves of
servers under live load.

Modules:

* :mod:`~repro.control.health` — heartbeat + I/O-hang health monitor
  declaring :class:`Incident`\\ s;
* :mod:`~repro.control.failover` — the Table 2 recovery playbook as one
  policy-driven orchestrator (evacuate + re-route + record);
* :mod:`~repro.control.migration` — VD live migration with
  pause → drain → attach phase accounting;
* :mod:`~repro.control.cluster` — per-stack deployments sharing one
  simulator, modelled as a fleet of logical servers;
* :mod:`~repro.control.upgrade` — the rolling-upgrade engine producing a
  simulated Figure 7 rollout;
* :mod:`~repro.control.drill` — upgrade drills as cacheable
  `repro.lab` experiment points.
"""

from .cluster import FLEET_DEPLOYMENT, ControlledCluster, LogicalServer
from .drill import build_cluster, execute_upgrade_point, result_to_artifact
from .failover import FailoverOrchestrator, FailoverPolicy, RecoveryRecord
from .health import (
    HEARTBEAT_LOSS,
    IO_HANG,
    TELEMETRY_ALERT,
    HealthMonitor,
    HealthPolicy,
    Incident,
)
from .migration import (
    DEFAULT_ATTACH_NS,
    LiveMigration,
    MigrationAbortedError,
    MigrationReport,
)
from .upgrade import (
    RollingUpgradeEngine,
    UpgradeResult,
    WaveReport,
    analytic_share_trend,
    check_rollout_consistency,
    partition_waves,
)

__all__ = [
    "FLEET_DEPLOYMENT",
    "ControlledCluster",
    "LogicalServer",
    "build_cluster",
    "execute_upgrade_point",
    "result_to_artifact",
    "FailoverOrchestrator",
    "FailoverPolicy",
    "RecoveryRecord",
    "HEARTBEAT_LOSS",
    "IO_HANG",
    "TELEMETRY_ALERT",
    "HealthMonitor",
    "HealthPolicy",
    "Incident",
    "DEFAULT_ATTACH_NS",
    "LiveMigration",
    "MigrationAbortedError",
    "MigrationReport",
    "RollingUpgradeEngine",
    "UpgradeResult",
    "WaveReport",
    "analytic_share_trend",
    "check_rollout_consistency",
    "partition_waves",
]
