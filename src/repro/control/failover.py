"""Orchestrated failover: incidents in, segment re-routing out.

Table 2 and §5 describe one recovery playbook used across every failure
scenario: detect the dead component, move the segments it hosted to
healthy block/chunk servers, and push the new mapping to the agents.  The
benchmarks used to hand-roll pieces of this per scenario; the
:class:`FailoverOrchestrator` packages it as a single policy-driven loop
on top of the health monitor, so a drill is "inject fault, run, read the
recovery records".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..ebs.deployment import EbsDeployment
from ..sim.events import MS
from .health import HEARTBEAT_LOSS, HealthMonitor, Incident


@dataclass(frozen=True)
class FailoverPolicy:
    """How aggressively the orchestrator converts incidents to re-routes.

    ``reroute_delay_ns`` models the control plane's decision + table-push
    time between an incident being declared and the new segment mapping
    taking effect fleet-wide.
    """

    reroute_delay_ns: int = 50 * MS

    def __post_init__(self) -> None:
        if self.reroute_delay_ns < 0:
            raise ValueError(f"negative reroute delay: {self.reroute_delay_ns}")


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed evacuation, with its end-to-end timeline."""

    node: str
    detected_ns: int
    rerouted_ns: int
    segments_moved: int
    vds_touched: Tuple[str, ...]

    @property
    def recovery_ns(self) -> int:
        """Incident declaration to mapping push — the Table 2 clock."""
        return self.rerouted_ns - self.detected_ns


class FailoverOrchestrator:
    """Reacts to heartbeat-loss incidents by evacuating the dead server."""

    def __init__(
        self,
        deployment: EbsDeployment,
        monitor: HealthMonitor,
        policy: FailoverPolicy = FailoverPolicy(),
    ):
        self.deployment = deployment
        self.sim = deployment.sim
        self.monitor = monitor
        self.policy = policy
        self.records: List[RecoveryRecord] = []
        self._evacuated: set = set()
        monitor.subscribe(self._on_incident)

    # ------------------------------------------------------------------
    def watch_storage(self) -> None:
        """Register every storage server's reachability as its heartbeat.

        A server whose every uplink is down (ToR death, cable cut, host
        power loss) stops heartbeating; a data-plane blackhole with PHYs
        up does *not* — exactly the asymmetry that made Table 2's silent
        failures the hard rows, which is why the monitor also consumes
        I/O-hang signals.
        """
        topology = self.deployment.topology
        for name in sorted(self.deployment.storage_servers):
            host = topology.hosts[name]
            self.monitor.register(
                name, lambda h=host: any(ch.up for ch in h.uplinks)
            )

    def _alive(self, name: str) -> bool:
        host = self.deployment.topology.hosts[name]
        return any(ch.up for ch in host.uplinks)

    # ------------------------------------------------------------------
    def _on_incident(self, incident: Incident) -> None:
        if incident.kind != HEARTBEAT_LOSS:
            return
        if incident.node not in self.deployment.storage_servers:
            return
        if incident.node in self._evacuated:
            return
        self._evacuated.add(incident.node)
        self.sim.schedule(self.policy.reroute_delay_ns, self._evacuate, incident)

    def _evacuate(self, incident: Incident) -> None:
        healthy = [
            name
            for name in sorted(self.deployment.storage_servers)
            if name != incident.node and self._alive(name)
        ]
        changed = self.deployment.segment_table.evacuate(incident.node, healthy)
        for vd_id in sorted(changed):
            self.deployment.refresh_vd(vd_id)
        self.records.append(
            RecoveryRecord(
                node=incident.node,
                detected_ns=incident.detected_ns,
                rerouted_ns=self.sim.now,
                segments_moved=sum(changed.values()),
                vds_touched=tuple(sorted(changed)),
            )
        )

    # ------------------------------------------------------------------
    @property
    def segments_moved(self) -> int:
        return sum(record.segments_moved for record in self.records)
