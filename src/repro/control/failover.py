"""Orchestrated failover: incidents in, segment re-routing out.

Table 2 and §5 describe one recovery playbook used across every failure
scenario: detect the dead component, move the segments it hosted to
healthy block/chunk servers, and push the new mapping to the agents.  The
benchmarks used to hand-roll pieces of this per scenario; the
:class:`FailoverOrchestrator` packages it as a single policy-driven loop
on top of the health monitor, so a drill is "inject fault, run, read the
recovery records".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ebs.deployment import EbsDeployment
from ..sim.events import MS
from .health import HEARTBEAT_LOSS, HealthMonitor, Incident


@dataclass(frozen=True)
class FailoverPolicy:
    """How aggressively the orchestrator converts incidents to re-routes.

    ``reroute_delay_ns`` models the control plane's decision + table-push
    time between an incident being declared and the new segment mapping
    taking effect fleet-wide.
    """

    reroute_delay_ns: int = 50 * MS

    def __post_init__(self) -> None:
        if self.reroute_delay_ns < 0:
            raise ValueError(f"negative reroute delay: {self.reroute_delay_ns}")


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed evacuation, with its end-to-end timeline."""

    node: str
    detected_ns: int
    rerouted_ns: int
    segments_moved: int
    vds_touched: Tuple[str, ...]

    @property
    def recovery_ns(self) -> int:
        """Incident declaration to mapping push — the Table 2 clock."""
        return self.rerouted_ns - self.detected_ns


class FailoverOrchestrator:
    """Reacts to heartbeat-loss incidents by evacuating the dead server."""

    def __init__(
        self,
        deployment: EbsDeployment,
        monitor: HealthMonitor,
        policy: FailoverPolicy = FailoverPolicy(),
        node_prefix: str = "",
        planner=None,
    ):
        self.deployment = deployment
        self.sim = deployment.sim
        self.monitor = monitor
        self.policy = policy
        #: Optional :class:`~repro.rebuild.planner.RebuildPlanner` (duck
        #: typed, no import cycle).  When set, a node failure plans real
        #: re-replication traffic *instead of* instant evacuation: the
        #: segment table is updated immediately (reads keep working off
        #: survivors) but the new replicas fill at data-plane speed.
        self.planner = planner
        #: Disambiguates probe names when several deployments (which reuse
        #: the same host names, e.g. ``sp/r0/h0`` per stack) share one
        #: monitor — e.g. ``"solar/"``.  Incident nodes carry the prefix;
        #: this orchestrator only reacts to (and strips) its own.
        self.node_prefix = node_prefix
        self.records: List[RecoveryRecord] = []
        self._evacuated: set = set()
        monitor.subscribe(self._on_incident)
        monitor.subscribe_resolved(self._on_resolved)

    # ------------------------------------------------------------------
    def watch_storage(self) -> None:
        """Register every storage server's reachability as its heartbeat.

        A server whose every uplink is down (ToR death, cable cut, host
        power loss) stops heartbeating; a data-plane blackhole with PHYs
        up does *not* — exactly the asymmetry that made Table 2's silent
        failures the hard rows, which is why the monitor also consumes
        I/O-hang signals.
        """
        topology = self.deployment.topology
        for name in sorted(self.deployment.storage_servers):
            host = topology.hosts[name]
            self.monitor.register(
                f"{self.node_prefix}{name}",
                lambda h=host: any(ch.up for ch in h.uplinks),
            )

    def _alive(self, name: str) -> bool:
        host = self.deployment.topology.hosts[name]
        return any(ch.up for ch in host.uplinks)

    # ------------------------------------------------------------------
    def _node_of(self, incident: Incident) -> Optional[str]:
        """Map an incident to one of this deployment's storage servers,
        or ``None`` when it belongs to another orchestrator/kind."""
        if incident.kind != HEARTBEAT_LOSS:
            return None
        if not incident.node.startswith(self.node_prefix):
            return None
        node = incident.node[len(self.node_prefix):]
        if node not in self.deployment.storage_servers:
            return None
        return node

    def _on_incident(self, incident: Incident) -> None:
        node = self._node_of(incident)
        if node is None or node in self._evacuated:
            return
        self._evacuated.add(node)
        self.sim.schedule(
            self.policy.reroute_delay_ns, self._evacuate, node, incident
        )

    def _on_resolved(self, incident: Incident) -> None:
        """Heartbeat back on an evacuated node: lift its quarantine so it
        rejoins the placement pool and future incidents re-evacuate it."""
        node = self._node_of(incident)
        if node is None or node not in self._evacuated:
            return
        self._evacuated.discard(node)
        self.deployment.segment_table.restore(node)
        if self.planner is not None:
            self.planner.on_node_recovered(node)

    def _evacuate(self, node: str, incident: Incident) -> None:
        if node not in self._evacuated:
            return  # recovered during the reroute delay
        healthy = [
            name
            for name in sorted(self.deployment.storage_servers)
            if name != node and self._alive(name)
        ]
        if self.planner is not None:
            changed = self.planner.on_node_failure(node, healthy)
        else:
            changed = self.deployment.segment_table.evacuate(node, healthy)
        for vd_id in sorted(changed):
            self.deployment.refresh_vd(vd_id)
        self.records.append(
            RecoveryRecord(
                node=node,
                detected_ns=incident.detected_ns,
                rerouted_ns=self.sim.now,
                segments_moved=sum(changed.values()),
                vds_touched=tuple(sorted(changed)),
            )
        )

    # ------------------------------------------------------------------
    @property
    def segments_moved(self) -> int:
        return sum(record.segments_moved for record in self.records)
