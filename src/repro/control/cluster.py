"""A controlled fleet: per-stack deployments side by side on one clock.

The rollout experiments of Figure 7 need something no single
:class:`~repro.ebs.deployment.EbsDeployment` provides: servers running
*different* FN stacks at the same simulated instant, with the control
plane moving virtual disks between them while guests keep issuing I/O.
:class:`ControlledCluster` builds one deployment per stack on a shared
:class:`~repro.sim.engine.Simulator` and models the fleet as logical
servers — each a VD plus an open-loop paced writer — that the upgrade
engine migrates from stack to stack.

Determinism: deployments are constructed in :data:`UPGRADE_ORDER`, server
state is touched only from simulator events, and every recorded sample is
simulated-time data, so a cluster run is a pure function of its spec and
seed (the property `repro.lab` caching relies on).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ebs.deployment import DeploymentSpec, EbsDeployment
from ..ebs.virtual_disk import VirtualDisk
from ..faults.injection import IoHangMonitor
from ..lab.spec import UPGRADE_ORDER
from ..sim.engine import Simulator
from ..sim.events import SECOND
from .migration import DEFAULT_ATTACH_NS, LiveMigration, MigrationReport

#: Compact per-stack deployment shape for fleet drills: enough compute
#: hosts to spread the logical servers, a small Clos, four storage hosts.
FLEET_DEPLOYMENT = DeploymentSpec(
    compute_racks=2,
    compute_hosts_per_rack=4,
    storage_racks=1,
    storage_hosts_per_rack=4,
)


@dataclass
class LogicalServer:
    """One fleet member: its VD, current stack, and per-server counters."""

    index: int
    name: str
    stack: str
    vd: VirtualDisk
    issued: int = 0
    completed: int = 0
    failed: int = 0
    #: Guest submissions held back while the VD was paused for migration.
    deferred: int = 0
    migrations: int = 0
    migrating: bool = False
    #: Closed [start, end) spans during which the server was unavailable.
    pause_intervals: List[Tuple[int, int]] = field(default_factory=list)

    def downtime_in(self, start_ns: int, end_ns: int) -> int:
        """Unavailable time overlapping the [start_ns, end_ns) window."""
        total = 0
        for lo, hi in self.pause_intervals:
            total += max(0, min(hi, end_ns) - max(lo, start_ns))
        return total


class ControlledCluster:
    """Per-stack deployments + logical servers + live load on one clock."""

    def __init__(
        self,
        stacks: Sequence[str],
        servers: int,
        seed: int = 0,
        deployment: DeploymentSpec = FLEET_DEPLOYMENT,
        vd_size_bytes: int = 64 * 1024 * 1024,
        io_gap_ns: int = 500_000,
        io_size_bytes: int = 4096,
        hang_threshold_ns: int = 1 * SECOND,
        attach_latency_ns: int = DEFAULT_ATTACH_NS,
        drain_timeout_ns: Optional[int] = None,
    ):
        if not stacks:
            raise ValueError("cluster needs at least one stack")
        unknown = [s for s in stacks if s not in UPGRADE_ORDER]
        if unknown:
            raise ValueError(f"stacks {unknown} not in {UPGRADE_ORDER}")
        if servers < 1:
            raise ValueError(f"need at least one server, got {servers}")
        self.seed = seed
        self.io_gap_ns = io_gap_ns
        self.io_size_bytes = io_size_bytes
        self.sim = Simulator(seed=seed)
        self.hang_monitor = IoHangMonitor(self.sim, threshold_ns=hang_threshold_ns)
        self.migrator = LiveMigration(
            self.sim, attach_latency_ns, drain_timeout_ns=drain_timeout_ns
        )
        self.deployments: Dict[str, EbsDeployment] = {}
        for stack in UPGRADE_ORDER:  # fixed construction order
            if stack in stacks:
                self.deployments[stack] = EbsDeployment(
                    dataclasses.replace(deployment, stack=stack, seed=seed),
                    sim=self.sim,
                )
        initial = next(s for s in UPGRADE_ORDER if s in stacks)
        self.servers: List[LogicalServer] = []
        first = self.deployments[initial]
        hosts = first.compute_host_names()
        for i in range(servers):
            vd = VirtualDisk(
                first, f"srv{i}-vd", hosts[i % len(hosts)], vd_size_bytes
            )
            self.servers.append(
                LogicalServer(index=i, name=f"srv{i}", stack=initial, vd=vd)
            )
        self.migration_reports: List[MigrationReport] = []
        #: Migrations rolled back by the drain timeout (fault mid-drain).
        self.aborted_migrations: List[MigrationReport] = []
        #: Completed-I/O samples: (issue_ns, latency_ns, server_index).
        self.samples: List[Tuple[int, int, int]] = []
        self._load_until_ns: Optional[int] = None

    # ------------------------------------------------------------------
    # Live load
    # ------------------------------------------------------------------
    def start_load(self, until_ns: int) -> None:
        """Start one paced open-loop writer per server, issuing until
        ``until_ns``.  Deferred ticks (VD paused for migration) count as
        queued guest I/O, never as errors."""
        if self._load_until_ns is not None:
            raise RuntimeError("cluster load already started")
        self._load_until_ns = until_ns
        for server in self.servers:
            self.sim.call_soon(self._tick, server)

    def _tick(self, server: LogicalServer) -> None:
        if self.sim.now >= self._load_until_ns:
            return
        vd = server.vd
        if vd.paused or vd.detached:
            server.deferred += 1
        else:
            span = vd.size_bytes - self.io_size_bytes
            offset = (server.issued * self.io_size_bytes) % span if span > 0 else 0
            offset -= offset % 4096
            issued_at = self.sim.now
            io = vd.write(
                offset,
                self.io_size_bytes,
                lambda done, s=server, t=issued_at: self._io_done(s, t, done),
            )
            self.hang_monitor.watch(io)
            server.issued += 1
        self.sim.schedule(self.io_gap_ns, self._tick, server)

    def _io_done(self, server: LogicalServer, issued_at: int, io) -> None:
        if io.trace is not None and io.trace.ok:
            server.completed += 1
            self.samples.append((issued_at, self.sim.now - issued_at, server.index))
        else:
            server.failed += 1

    # ------------------------------------------------------------------
    # Control-plane actions
    # ------------------------------------------------------------------
    def upgrade_server(
        self,
        server: LogicalServer,
        to_stack: str,
        on_done: Optional[Callable[[LogicalServer, MigrationReport], None]] = None,
        on_abort: Optional[Callable[[LogicalServer, MigrationReport], None]] = None,
    ) -> None:
        """Hot-upgrade one server: live-migrate its VD to ``to_stack``.

        If the cluster's migrator has a drain timeout and a fault strands
        the drain, the migration aborts: the server stays on its current
        stack with its VD resumed, the stall is booked as a pause
        interval, and ``on_abort`` (if given) observes the rollback.
        """
        if server.migrating:
            raise RuntimeError(f"{server.name} is already migrating")
        target = self.deployments[to_stack]
        hosts = target.compute_host_names()
        target_host = hosts[server.index % len(hosts)]
        server.migrating = True

        def finish(new_vd: VirtualDisk, report: MigrationReport) -> None:
            server.vd = new_vd
            server.stack = to_stack
            server.migrations += 1
            server.migrating = False
            server.pause_intervals.append((report.started_ns, report.attached_ns))
            self.migration_reports.append(report)
            if on_done is not None:
                on_done(server, report)

        def aborted(vd: VirtualDisk, report: MigrationReport) -> None:
            server.migrating = False
            server.pause_intervals.append((report.started_ns, report.aborted_ns))
            self.aborted_migrations.append(report)
            if on_abort is not None:
                on_abort(server, report)

        self.migrator.migrate(server.vd, target, target_host, finish, aborted)

    # ------------------------------------------------------------------
    # Fleet accounting
    # ------------------------------------------------------------------
    def mix(self) -> Dict[str, float]:
        """Current fraction of the fleet on each stack."""
        counts: Dict[str, int] = {}
        for server in self.servers:
            counts[server.stack] = counts.get(server.stack, 0) + 1
        return {
            stack: counts.get(stack, 0) / len(self.servers)
            for stack in self.deployments
        }

    def availability(self, start_ns: int, end_ns: int) -> float:
        """1 - (fleet downtime / fleet time) over a window."""
        window = end_ns - start_ns
        if window <= 0:
            raise ValueError(f"empty window [{start_ns}, {end_ns})")
        down = sum(s.downtime_in(start_ns, end_ns) for s in self.servers)
        return 1.0 - down / (window * len(self.servers))

    def component_totals(self) -> Tuple[Dict[str, int], int]:
        """Summed SA/FN/BN/SSD trace time and trace count, all stacks."""
        totals = {c: 0 for c in ("sa", "fn", "bn", "ssd")}
        count = 0
        for stack in self.deployments:
            traces = self.deployments[stack].collector.completed()
            count += len(traces)
            for trace in traces:
                for component in totals:
                    totals[component] += trace.components[component]
        return totals, count

    @property
    def issued(self) -> int:
        return sum(s.issued for s in self.servers)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.servers)

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.servers)

    @property
    def deferred(self) -> int:
        return sum(s.deferred for s in self.servers)
