"""Time-series bucketing for rate plots (Figures 3, 4, 7)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class TimeSeries:
    """Accumulates (time, amount) samples into fixed-width buckets."""

    name: str
    bucket_ns: int
    _buckets: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bucket_ns <= 0:
            raise ValueError(f"bucket width must be positive: {self.bucket_ns}")

    def add(self, time_ns: int, amount: float = 1.0) -> None:
        self._buckets[time_ns // self.bucket_ns] = (
            self._buckets.get(time_ns // self.bucket_ns, 0.0) + amount
        )

    def buckets(self) -> List[tuple[int, float]]:
        """Sorted (bucket_start_ns, total) pairs."""
        return [(idx * self.bucket_ns, total) for idx, total in sorted(self._buckets.items())]

    def rates_per_second(self) -> List[tuple[int, float]]:
        """Sorted (bucket_start_ns, amount_per_second) pairs."""
        scale = 1e9 / self.bucket_ns
        return [(start, total * scale) for start, total in self.buckets()]

    def total(self) -> float:
        return sum(self._buckets.values())

    def __len__(self) -> int:
        return len(self._buckets)
