"""Measurement utilities: latency statistics, distributed I/O traces and
time-series bucketing."""

from .series import TimeSeries
from .stats import Counter, LatencyStats, mean_ci, percentile
from .trace import COMPONENTS, IoTrace, TraceCollector

__all__ = [
    "LatencyStats",
    "Counter",
    "percentile",
    "mean_ci",
    "IoTrace",
    "TraceCollector",
    "COMPONENTS",
    "TimeSeries",
]

from .report import collector_chart, render_bar, render_breakdown_chart  # noqa: E402

__all__ += ["render_bar", "render_breakdown_chart", "collector_chart"]

from .export import (  # noqa: E402
    breakdown_to_json,
    latency_to_json,
    series_to_csv,
    traces_to_csv,
)

__all__ += ["traces_to_csv", "latency_to_json", "series_to_csv", "breakdown_to_json"]
