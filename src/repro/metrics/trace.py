"""Distributed I/O tracing — the instrument behind Figure 6.

The paper monitors each I/O with a distributed trace and attributes its
end-to-end latency to four components: **SA** (storage agent processing on
both issue and completion), **FN** (frontend network, both directions),
**BN** (backend network RPCs inside the storage cluster), and **SSD**
(chunk-server processing plus the physical device).

An :class:`IoTrace` rides along with one I/O.  Stages stamp absolute marks
(:meth:`mark`) and add component durations (:meth:`add`); the final
breakdown is reconstructed from the critical-path RPC's marks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

COMPONENTS = ("sa", "fn", "bn", "ssd")


@dataclass
class IoTrace:
    """Trace of a single I/O operation."""

    io_id: int
    kind: str  # "read" | "write"
    size_bytes: int
    submit_ns: int
    marks: Dict[str, int] = field(default_factory=dict)
    components: Dict[str, int] = field(default_factory=lambda: dict.fromkeys(COMPONENTS, 0))
    complete_ns: Optional[int] = None
    ok: bool = True
    error: str = ""

    def mark(self, name: str, now_ns: int) -> None:
        """Stamp an absolute timestamp (later stamps overwrite: the trace
        keeps the critical path, i.e. the last RPC to pass each stage)."""
        self.marks[name] = now_ns

    def add(self, component: str, duration_ns: int) -> None:
        if component not in self.components:
            raise KeyError(f"unknown trace component {component!r}")
        if duration_ns < 0:
            raise ValueError(f"negative duration for {component!r}: {duration_ns}")
        self.components[component] += duration_ns

    def complete(self, now_ns: int, ok: bool = True, error: str = "") -> None:
        self.complete_ns = now_ns
        self.ok = ok
        self.error = error

    @property
    def total_ns(self) -> int:
        if self.complete_ns is None:
            raise ValueError(f"I/O {self.io_id} not complete")
        return self.complete_ns - self.submit_ns

    def breakdown_us(self) -> Dict[str, float]:
        return {k: round(v / 1_000, 2) for k, v in self.components.items()}

    def unattributed_ns(self) -> int:
        """Latency not attributed to any component (should stay small)."""
        return self.total_ns - sum(self.components.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self.complete_ns is None else f"{self.total_ns / 1000:.1f}us"
        return f"<IoTrace #{self.io_id} {self.kind} {self.size_bytes}B {state}>"


@dataclass
class TraceCollector:
    """Aggregates completed traces into per-component latency statistics.

    Subscribers (e.g. the telemetry plane's online diagnosis engine) see
    every trace the moment it is recorded, so slow-I/O attribution can
    run *during* the simulation rather than from the list afterwards.
    """

    traces: List[IoTrace] = field(default_factory=list)
    subscribers: List[Callable[[IoTrace], None]] = field(
        default_factory=list, repr=False
    )

    def subscribe(self, callback: Callable[[IoTrace], None]) -> None:
        """Stream every subsequently recorded trace to ``callback``."""
        self.subscribers.append(callback)

    def record(self, trace: IoTrace) -> None:
        if trace.complete_ns is None:
            raise ValueError("cannot record an incomplete trace")
        self.traces.append(trace)
        for subscriber in self.subscribers:
            subscriber(trace)

    def completed(self, kind: Optional[str] = None, ok_only: bool = True) -> List[IoTrace]:
        return [
            t
            for t in self.traces
            if (kind is None or t.kind == kind) and (t.ok or not ok_only)
        ]

    def component_percentile(self, component: str, pct: float, kind: Optional[str] = None) -> float:
        """Percentile (ns) of one component across completed traces."""
        from .stats import percentile

        values = sorted(t.components[component] for t in self.completed(kind))
        if not values:
            raise ValueError(f"no completed traces for kind={kind!r}")
        return percentile(values, pct)

    def total_percentile(self, pct: float, kind: Optional[str] = None) -> float:
        from .stats import percentile

        values = sorted(t.total_ns for t in self.completed(kind))
        if not values:
            raise ValueError(f"no completed traces for kind={kind!r}")
        return percentile(values, pct)

    def breakdown_us(self, pct: float, kind: Optional[str] = None) -> Dict[str, float]:
        """Per-component percentile breakdown in us — one Figure 6 bar."""
        return {
            c: round(self.component_percentile(c, pct, kind) / 1_000, 2)
            for c in COMPONENTS
        }
