"""Result export: CSV/JSON serialization of collectors and series, so
experiment outputs can be plotted or diffed outside the simulator."""

from __future__ import annotations

import csv
import json
from typing import List, Mapping, Optional, TextIO

from .series import TimeSeries
from .stats import LatencyStats
from .trace import COMPONENTS, TraceCollector


def traces_to_csv(collector: TraceCollector, fp: TextIO,
                  ok_only: bool = True) -> int:
    """One row per completed I/O: identity, totals, component breakdown."""
    writer = csv.writer(fp)
    writer.writerow(
        ["io_id", "kind", "size_bytes", "submit_ns", "total_ns", "ok", "error"]
        + [f"{c}_ns" for c in COMPONENTS]
    )
    count = 0
    for trace in collector.completed(ok_only=ok_only):
        writer.writerow(
            [trace.io_id, trace.kind, trace.size_bytes, trace.submit_ns,
             trace.total_ns, trace.ok, trace.error]
            + [trace.components[c] for c in COMPONENTS]
        )
        count += 1
    return count


def latency_to_json(stats: Mapping[str, LatencyStats], fp: TextIO,
                    percentiles: Optional[List[float]] = None) -> None:
    """Summaries of several LatencyStats, keyed by label."""
    percentiles = percentiles or [50, 95, 99]
    payload = {}
    for label, s in stats.items():
        entry = dict(s.summary_us())
        for p in percentiles:
            entry[f"p{p:g}_us"] = round(s.p(p) / 1000, 2)
        payload[label] = entry
    json.dump(payload, fp, indent=2, sort_keys=True)
    fp.write("\n")


def series_to_csv(series: TimeSeries, fp: TextIO, as_rate: bool = False) -> int:
    """Bucketed time series as (t_ns, value) rows."""
    writer = csv.writer(fp)
    writer.writerow(["t_ns", "rate_per_s" if as_rate else "total"])
    rows = series.rates_per_second() if as_rate else series.buckets()
    for t_ns, value in rows:
        writer.writerow([t_ns, value])
    return len(rows)


def breakdown_to_json(collector: TraceCollector, fp: TextIO,
                      percentiles: Optional[List[float]] = None) -> None:
    """Figure 6-shaped data: per-kind, per-percentile component breakdowns."""
    percentiles = percentiles or [50, 95]
    payload: dict = {}
    for kind in ("read", "write"):
        if not collector.completed(kind):
            continue
        payload[kind] = {
            f"p{p:g}": collector.breakdown_us(p, kind) for p in percentiles
        }
    json.dump(payload, fp, indent=2, sort_keys=True)
    fp.write("\n")
