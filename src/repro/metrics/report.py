"""Plain-text reporting: the stacked component bars of Figure 6, rendered
as ASCII so benches and examples can show breakdowns without plotting
dependencies."""

from __future__ import annotations

from typing import Mapping, Sequence

from .trace import COMPONENTS, TraceCollector

#: One glyph per component, in the paper's stacking order.
COMPONENT_GLYPHS = {"fn": "#", "bn": "=", "ssd": "o", "sa": "+"}


def render_bar(
    breakdown_us: Mapping[str, float],
    scale_us_per_char: float,
    label: str = "",
    width_label: int = 12,
) -> str:
    """Render one stacked latency bar, e.g. ``luna  ####==oo++  83.4us``."""
    if scale_us_per_char <= 0:
        raise ValueError(f"non-positive scale: {scale_us_per_char}")
    segments = []
    total = 0.0
    for component in ("fn", "bn", "ssd", "sa"):
        value = float(breakdown_us.get(component, 0.0))
        total += value
        segments.append(COMPONENT_GLYPHS[component] * round(value / scale_us_per_char))
    bar = "".join(segments)
    return f"{label:<{width_label}s} {bar} {total:.1f}us"


def render_breakdown_chart(
    rows: Sequence[tuple],
    title: str = "",
    width: int = 60,
) -> str:
    """Render a set of (label, breakdown_us) rows on a shared scale.

    Returns a Figure 6-style block::

        4KB Write (median)   [#=FN ==BN oo=SSD ++=SA]
        kernel  ############################====o+++  192.7us
        luna    ####==oo+++                            83.4us
    """
    if not rows:
        raise ValueError("no rows to render")
    totals = [sum(b.get(c, 0.0) for c in COMPONENTS) for _l, b in rows]
    scale = max(totals) / max(1, width)
    scale = max(scale, 1e-9)
    legend = "  ".join(f"{g}={c.upper()}" for c, g in COMPONENT_GLYPHS.items())
    lines = [f"{title}   [{legend}]"] if title else [f"[{legend}]"]
    label_width = max(len(label) for label, _b in rows) + 2
    for label, breakdown in rows:
        lines.append(render_bar(breakdown, scale, label, label_width))
    return "\n".join(lines) + "\n"


def collector_chart(
    collectors: Mapping[str, TraceCollector],
    kind: str,
    pct: float,
    title: str = "",
) -> str:
    """Chart one percentile across several deployments' collectors."""
    rows = [
        (name, collector.breakdown_us(pct, kind))
        for name, collector in collectors.items()
    ]
    return render_breakdown_chart(rows, title=title or f"{kind} p{pct:.0f}")
