"""Latency statistics: streaming collection, percentiles, summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile out of range: {p}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi or sorted_values[lo] == sorted_values[hi]:
        return float(sorted_values[lo])
    frac = rank - lo
    return float(sorted_values[lo]) * (1 - frac) + float(sorted_values[hi]) * frac


#: The zero-marked row an empty summary produces: an idle scrape window
#: must render as "no traffic", never crash the reporter.
EMPTY_SUMMARY_US = {
    "count": 0,
    "mean_us": 0.0,
    "p50_us": 0.0,
    "p95_us": 0.0,
    "p99_us": 0.0,
    "max_us": 0.0,
}


@dataclass
class LatencyStats:
    """Accumulates samples (ns) and reports summary statistics.

    Two backing modes:

    * the default keeps every sample (what lab artifacts serialize and
      exact percentiles need), with a sort cached per sample count so a
      summary sorts once instead of once per percentile;
    * ``bounded=True`` holds a :class:`repro.telemetry.sketch.
      QuantileSketch` instead of the sample list — O(1) memory with a
      relative-error guarantee, for hot loops that must not retain every
      I/O (``samples`` stays empty in this mode).
    """

    name: str = ""
    samples: List[int] = field(default_factory=list)
    bounded: bool = False
    _sketch: object = field(default=None, init=False, repr=False, compare=False)
    _sorted: List[int] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _sorted_count: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.bounded:
            if self.samples:
                raise ValueError("bounded stats cannot start from samples")
            from ..telemetry.sketch import QuantileSketch

            self._sketch = QuantileSketch()

    def record(self, value_ns: int) -> None:
        if value_ns < 0:
            raise ValueError(f"negative latency sample: {value_ns}")
        if self.bounded:
            self._sketch.add(value_ns)
        else:
            self.samples.append(value_ns)

    def extend(self, values: Iterable[int]) -> None:
        for value in values:
            self.record(value)

    def __len__(self) -> int:
        return self.count

    @property
    def count(self) -> int:
        return self._sketch.count if self.bounded else len(self.samples)

    def _ordered(self) -> List[int]:
        """Sorted samples, re-sorted only when the count has changed."""
        if self._sorted_count != len(self.samples):
            self._sorted = sorted(self.samples)
            self._sorted_count = len(self.samples)
        return self._sorted

    def mean(self) -> float:
        if not self.count:
            raise ValueError(f"no samples in {self.name!r}")
        if self.bounded:
            return self._sketch.mean()
        return sum(self.samples) / len(self.samples)

    def p(self, pct: float) -> float:
        if self.bounded:
            if not self._sketch.count:
                raise ValueError(f"no samples in {self.name!r}")
            if not 0.0 <= pct <= 100.0:
                raise ValueError(f"percentile out of range: {pct}")
            return self._sketch.percentile(pct)
        return percentile(self._ordered(), pct)

    def median(self) -> float:
        return self.p(50)

    def summary_us(self) -> Dict[str, float]:
        """Summary in microseconds — the unit the paper's figures use.

        Empty stats produce the zero-marked :data:`EMPTY_SUMMARY_US` row
        rather than raising, so idle measurement windows stay renderable.
        """
        if not self.count:
            return dict(EMPTY_SUMMARY_US)
        if self.bounded:
            sk = self._sketch
            return {
                "count": sk.count,
                "mean_us": round(sk.mean() / 1_000, 2),
                "p50_us": round(sk.percentile(50) / 1_000, 2),
                "p95_us": round(sk.percentile(95) / 1_000, 2),
                "p99_us": round(sk.percentile(99) / 1_000, 2),
                "max_us": round(sk.max_value / 1_000, 2),
            }
        ordered = self._ordered()
        return {
            "count": len(ordered),
            "mean_us": round(sum(ordered) / len(ordered) / 1_000, 2),
            "p50_us": round(percentile(ordered, 50) / 1_000, 2),
            "p95_us": round(percentile(ordered, 95) / 1_000, 2),
            "p99_us": round(percentile(ordered, 99) / 1_000, 2),
            "max_us": round(ordered[-1] / 1_000, 2),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return f"<LatencyStats {self.name!r} empty>"
        return f"<LatencyStats {self.name!r} {self.summary_us()}>"

    @classmethod
    def merged(
        cls, parts: Iterable["LatencyStats"], name: str = "merged"
    ) -> "LatencyStats":
        """Pool several runs' samples (e.g. seed replicates) into one
        distribution, so percentiles are computed over all I/Os rather
        than averaged across runs (averaging percentiles is biased).
        Bounded parts merge their sketches; mixing modes is rejected
        because the sample-backed result would silently lose the
        sketch-held I/Os."""
        parts = list(parts)
        if any(part.bounded for part in parts):
            if not all(part.bounded for part in parts):
                raise ValueError("cannot merge bounded and sample-backed stats")
            out = cls(name, bounded=True)
            for part in parts:
                out._sketch.merge(part._sketch)
            return out
        out = cls(name)
        for part in parts:
            out.samples.extend(part.samples)
        return out


#: Two-sided 95% Student-t critical values by degrees of freedom.  Seed
#: replicate counts are small (2-10 runs), where the normal 1.96 badly
#: understates the interval; beyond the table the normal value is close.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    15: 2.131, 20: 2.086, 30: 2.042,
}


def mean_ci(values: Sequence[float]) -> tuple:
    """Mean and 95% confidence half-width of replicate measurements.

    Returns ``(mean, half_width)``; the half-width is 0.0 for a single
    replicate (no variance estimate is possible).
    """
    if not values:
        raise ValueError("mean_ci of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    df = n - 1
    t = _T95.get(df) or next(
        (_T95[k] for k in sorted(_T95) if k >= df), 1.960
    )
    return mean, t * math.sqrt(var / n)


@dataclass
class Counter:
    """A named monotonic counter with helpers for rate reporting."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def per_second(self, duration_ns: int) -> float:
        if duration_ns <= 0:
            return 0.0
        return self.value / (duration_ns / 1e9)
