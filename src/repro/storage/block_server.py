"""Block servers: the storage-cluster front door for each segment.

A block server owns a set of segments.  For WRITE it replicates each block
to the segment's chunk servers over the BN and confirms once all copies
land (Figure 2 steps 2-3); for READ it fetches from a replica.  It also
"aggregates and sequentializes" operations (§2.2), charged as CPU time.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..host.server import StorageServer
from ..profiles import SsdProfile
from ..sim.engine import Simulator
from .block import DataBlock
from .bn import BackendNetwork
from .chunk_server import ChunkReply, ChunkRequest, ChunkServer
from .replication import QuorumTracker
from .segment_table import Segment


class BlockServer:
    """One block server instance."""

    def __init__(
        self,
        sim: Simulator,
        server: StorageServer,
        bn: BackendNetwork,
        chunk_servers: Dict[str, ChunkServer],
        profile: SsdProfile,
    ):
        self.sim = sim
        self.server = server
        self.bn = bn
        self.chunk_servers = chunk_servers
        self.profile = profile
        self.writes = 0
        self.reads = 0

    @property
    def name(self) -> str:
        return self.server.name

    def _chunk(self, name: str) -> ChunkServer:
        try:
            return self.chunk_servers[name]
        except KeyError:
            raise KeyError(
                f"block server {self.name} has no route to chunk server {name!r}"
            ) from None

    # ------------------------------------------------------------------
    def handle_write(
        self,
        segment: Segment,
        block: DataBlock,
        crc: int,
        on_done: Callable[[bool, List[ChunkReply]], None],
    ) -> None:
        """Replicate one block to every chunk replica; ack when all land.

        ``on_done(ok, replies)`` receives the chunk replies so callers can
        attribute SSD time (Figure 6 trace splitting).
        """
        self.writes += 1
        core = self.server.cpu.least_loaded()
        core.submit(
            self.profile.block_server_cpu_ns,
            self._fan_out_write,
            segment,
            block,
            crc,
            on_done,
        )

    def _fan_out_write(
        self, segment: Segment, block: DataBlock, crc: int, on_done
    ) -> None:
        tracker = QuorumTracker(len(segment.replicas), on_done)
        request = ChunkRequest(
            "write",
            segment.segment_id,
            block.vd_id,
            block.lba,
            block.size_bytes,
            data=block.data,
            crc=crc,
        )
        for replica in segment.replicas:
            chunk = self._chunk(replica)
            self.bn.call(
                chunk.handle,
                request,
                block.size_bytes + 128,
                lambda reply, t=tracker: t.complete(reply.ok, reply),
            )

    # ------------------------------------------------------------------
    def handle_read(
        self,
        segment: Segment,
        vd_id: str,
        lba: int,
        size_bytes: int,
        on_done: Callable[[ChunkReply], None],
    ) -> None:
        """Fetch one block from the segment's primary replica."""
        self.reads += 1
        core = self.server.cpu.least_loaded()
        core.submit(
            self.profile.block_server_cpu_ns,
            self._fetch_read,
            segment,
            vd_id,
            lba,
            size_bytes,
            on_done,
        )

    def _fetch_read(
        self, segment: Segment, vd_id: str, lba: int, size_bytes: int, on_done
    ) -> None:
        request = ChunkRequest("read", segment.segment_id, vd_id, lba, size_bytes)
        chunk = self._chunk(segment.replicas[0])
        self.bn.call(chunk.handle, request, 128, on_done)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BlockServer {self.name} w={self.writes} r={self.reads}>"
