"""SSD device model (the 'SSD' component of Figure 6).

§2.3 (footnote 1) and §3: chunk-server writes land in the SSD's write
cache without touching NAND — "tens of us", one to two orders of magnitude
faster than kernel TCP — because the LSM-tree and commit aggregation turn
random writes into sequential ones.  Reads usually pay NAND latency
unless they hit the chunk server's cache.

The device is a serial resource: operations serialize behind each other at
the device bandwidth for their data movement, plus a sampled medium
latency (lognormal spread around the profile's base).
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Optional

from ..profiles import SsdProfile, bytes_time_ns
from ..sim.engine import Simulator


def lognormal_around(rng: random.Random, base_ns: int, sigma: float) -> int:
    """Sample a latency with median ``base_ns`` and lognormal spread."""
    if sigma <= 0:
        return base_ns
    return max(1, int(base_ns * math.exp(rng.gauss(0.0, sigma))))


class SsdDevice:
    """One chunk-server SSD."""

    def __init__(self, sim: Simulator, name: str, profile: SsdProfile):
        self.sim = sim
        self.name = name
        self.profile = profile
        self._rng = sim.rng.stream(f"ssd/{name}")
        #: One busy-until horizon per internal channel (k-server queue).
        self._channels = [0] * max(1, profile.channels)
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def _occupy(self, service_ns: int, size_bytes: int) -> int:
        transfer_ns = bytes_time_ns(size_bytes, self.profile.device_gbps)
        index = min(range(len(self._channels)), key=self._channels.__getitem__)
        start = max(self.sim.now, self._channels[index])
        done = start + service_ns + transfer_ns
        self._channels[index] = done
        return done

    @property
    def busy_until(self) -> int:
        """Earliest time a new operation could start (least-busy channel)."""
        return min(self._channels)

    def submit_write(
        self, size_bytes: int, callback: Optional[Callable[..., Any]] = None, *args: Any
    ) -> int:
        """Write: lands in the write cache (fast path).  Returns done-time."""
        if size_bytes <= 0:
            raise ValueError(f"non-positive write size: {size_bytes}")
        service = lognormal_around(
            self._rng, self.profile.write_cache_ns, self.profile.write_cache_sigma
        )
        done = self._occupy(service, size_bytes)
        self.writes += 1
        self.bytes_written += size_bytes
        if callback is not None:
            self.sim.schedule_at(done, callback, *args)
        return done

    def submit_read(
        self, size_bytes: int, callback: Optional[Callable[..., Any]] = None, *args: Any
    ) -> int:
        """Read: DRAM/SLC cache hit with small probability, NAND otherwise."""
        if size_bytes <= 0:
            raise ValueError(f"non-positive read size: {size_bytes}")
        if self._rng.random() < self.profile.read_cache_hit_ratio:
            service = lognormal_around(self._rng, self.profile.read_cache_ns, 0.10)
        else:
            service = lognormal_around(
                self._rng, self.profile.nand_read_ns, self.profile.nand_read_sigma
            )
        done = self._occupy(service, size_bytes)
        self.reads += 1
        self.bytes_read += size_bytes
        if callback is not None:
            self.sim.schedule_at(done, callback, *args)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SsdDevice {self.name} r={self.reads} w={self.writes}>"
