"""Replication helpers: quorum tracking for multi-copy writes."""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class QuorumTracker:
    """Collects N completions and fires once when all (or enough) arrive.

    EBS writes wait for *all* replicas (full-write quorum, §2.2: three
    copies confirmed before the SA gets its WRITE success), so the default
    required count equals the total; a smaller quorum is supported for
    ablation experiments.
    """

    def __init__(
        self,
        total: int,
        on_done: Callable[[bool, List[Any]], None],
        required: Optional[int] = None,
    ):
        if total < 1:
            raise ValueError(f"quorum over {total} replicas")
        required = total if required is None else required
        if not 1 <= required <= total:
            raise ValueError(f"required {required} out of range for total {total}")
        self.total = total
        self.required = required
        self.on_done = on_done
        self.successes: List[Any] = []
        self.failures: List[Any] = []
        self._fired = False

    def complete(self, ok: bool, result: Any = None) -> None:
        """Record one replica's completion."""
        if self._fired:
            return
        (self.successes if ok else self.failures).append(result)
        if len(self.successes) >= self.required:
            self._fired = True
            self.on_done(True, self.successes)
        elif len(self.successes) + len(self.failures) >= self.total:
            # Even if every remaining replica succeeded we could not reach
            # the quorum... but successes are all in by now, so this is the
            # definitive failure path.
            self._fired = True
            self.on_done(False, self.failures)

    @property
    def done(self) -> bool:
        return self._fired
