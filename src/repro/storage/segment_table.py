"""The Segment Table: the core data structure of storage virtualization.

§2.2: the Segment Table "traces the mapping between the data block address
on a VD and the corresponding data segment(s) on the physical disk(s) and
the block servers in storage clusters".  §4.5: each segment hosted in a
block server covers relatively large (e.g. 2MB) contiguous LBA ranges so
that I/O splitting across block servers stays rare.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..profiles import BLOCK_SIZE

#: §4.5: segments are "relatively large (e.g., 2MB)".
SEGMENT_BYTES = 2 * 1024 * 1024
BLOCKS_PER_SEGMENT = SEGMENT_BYTES // BLOCK_SIZE


@dataclass(frozen=True)
class Segment:
    """A contiguous run of a VD's LBAs hosted by one block server."""

    segment_id: str
    vd_id: str
    start_lba: int
    num_blocks: int
    block_server: str  # endpoint name of the hosting block server
    replicas: Tuple[str, ...]  # chunk-server endpoint names (3 copies, §2.2)

    @property
    def end_lba(self) -> int:
        return self.start_lba + self.num_blocks

    def contains(self, lba: int) -> bool:
        return self.start_lba <= lba < self.end_lba


@dataclass(frozen=True)
class RebuildItem:
    """One under-replicated segment's copy job, as planned by the table.

    ``sources`` are the members that still hold the bytes (survivors that
    are not themselves pending rebuild destinations); ``destination`` is
    the freshly-picked replica that must be filled.  ``requeued`` marks a
    job that replaces an earlier pending rebuild whose destination died
    mid-copy — the transfer restarts from zero on the new destination.
    """

    vd_id: str
    index: int
    segment_id: str
    start_lba: int
    num_blocks: int
    destination: str
    sources: Tuple[str, ...]
    requeued: bool = False

    @property
    def bytes_total(self) -> int:
        return self.num_blocks * BLOCK_SIZE


@dataclass(frozen=True)
class Extent:
    """A sub-range of one I/O that lands inside a single segment."""

    segment: Segment
    start_lba: int
    num_blocks: int


class UnmappedAddressError(KeyError):
    """An LBA fell outside every provisioned segment of the VD."""


class SegmentTable:
    """Per-VD ordered segment maps with range lookup and I/O splitting."""

    def __init__(self) -> None:
        self._segments: Dict[str, List[Segment]] = {}
        #: Servers evacuated by the control plane and not yet restored.
        #: Placement (``provision``) avoids them, and a repeat ``evacuate``
        #: of one is an explicit no-op — overlapping incidents on the same
        #: host must not double-count ``segments_moved`` or re-place data
        #: onto a node the fleet already considers dead.
        self._evacuated: set = set()
        #: Pending-rebuild state: segment_id -> replica names that are in
        #: the membership but have not yet received the segment's bytes.
        #: Distinguishes "degraded, rebuilding" from "replica policy
        #: violated" for the invariant checks, and lets a destination that
        #: dies mid-copy hand its in-flight transfers to a replacement.
        self._rebuilding: Dict[str, set] = {}

    def provision(
        self,
        vd_id: str,
        size_bytes: int,
        block_servers: Sequence[str],
        chunk_servers: Sequence[str],
        replicas: int = 3,
    ) -> List[Segment]:
        """Carve a VD into segments spread over the storage cluster.

        Placement is deterministic (hash-spread) so experiments are
        reproducible without a management-plane simulation.
        """
        if vd_id in self._segments:
            raise ValueError(f"VD {vd_id!r} already provisioned")
        if size_bytes <= 0 or size_bytes % BLOCK_SIZE:
            raise ValueError(f"VD size must be a positive multiple of {BLOCK_SIZE}")
        # Evacuated servers are off-limits for new placement until the
        # control plane restores them — a VD provisioned mid-incident
        # (e.g. a live migration attaching to this deployment) must not
        # land segments on a node known to be dead.
        block_servers = [s for s in block_servers if s not in self._evacuated]
        chunk_servers = [s for s in chunk_servers if s not in self._evacuated]
        if not block_servers:
            raise ValueError("no block servers available")
        if len(chunk_servers) < replicas:
            raise ValueError(
                f"need >= {replicas} chunk servers, have {len(chunk_servers)}"
            )
        total_blocks = size_bytes // BLOCK_SIZE
        segments: List[Segment] = []
        start = 0
        index = 0
        while start < total_blocks:
            num = min(BLOCKS_PER_SEGMENT, total_blocks - start)
            seg_id = f"{vd_id}/seg{index}"
            bs = block_servers[self._spread(seg_id, "bs") % len(block_servers)]
            reps = self._pick_replicas(seg_id, chunk_servers, replicas)
            segments.append(Segment(seg_id, vd_id, start, num, bs, reps))
            start += num
            index += 1
        self._segments[vd_id] = segments
        return segments

    @staticmethod
    def _spread(key: str, salt: str) -> int:
        digest = hashlib.blake2b(f"{salt}|{key}".encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little")

    @classmethod
    def _pick_replicas(
        cls, seg_id: str, chunk_servers: Sequence[str], replicas: int
    ) -> Tuple[str, ...]:
        ranked = sorted(
            chunk_servers, key=lambda cs: cls._spread(f"{seg_id}|{cs}", "rep")
        )
        return tuple(ranked[:replicas])

    # ------------------------------------------------------------------
    # Control-plane operations (repro.control.failover)
    # ------------------------------------------------------------------
    def __contains__(self, vd_id: str) -> bool:
        return vd_id in self._segments

    def vd_ids(self) -> List[str]:
        return sorted(self._segments)

    def segments_on(self, server: str) -> List[Tuple[str, int, Segment]]:
        """Every (vd_id, index, segment) hosted by or replicated on
        ``server``, in deterministic (vd, index) order."""
        out: List[Tuple[str, int, Segment]] = []
        for vd_id in sorted(self._segments):
            for index, seg in enumerate(self._segments[vd_id]):
                if seg.block_server == server or server in seg.replicas:
                    out.append((vd_id, index, seg))
        return out

    def evacuate(self, server: str, replacements: Sequence[str]) -> Dict[str, int]:
        """Move every segment off a failed server — the §2.2 "segments on
        the failed block server are re-routed to other block servers"
        recovery path, made reusable for the failover orchestrator.

        ``server`` loses its role both as hosting block server and as
        replica; replacement picks are hash-spread so recovery placement
        is deterministic.  Returns ``{vd_id: segments_changed}``.

        Idempotent: a second evacuation of an already-evacuated server
        (overlapping incidents on the same host) is a no-op returning
        ``{}`` — it must not double-count moved segments.  The server
        stays quarantined from new placement until :meth:`restore`.
        """
        changed, _items = self._relocate(server, replacements, rebuild=False)
        return changed

    def begin_rebuild(
        self, server: str, replacements: Sequence[str]
    ) -> Tuple[Dict[str, int], List[RebuildItem]]:
        """Like :meth:`evacuate`, but the replacement replicas start empty:
        each segment where ``server`` held a copy becomes *pending rebuild*
        and a :class:`RebuildItem` describes the copy job (sources,
        destination, byte count) the `repro.rebuild` executor must run.

        The destination is appended *last* in the membership tuple so the
        read path (``replicas[0]``) keeps landing on a data-holding
        survivor for as long as one exists.  If ``server`` was itself a
        pending destination of an earlier rebuild, that job's bytes are
        lost with it — the emitted item carries ``requeued=True`` and the
        pending marker moves to the fresh destination, so in-flight
        transfers are re-queued instead of silently dropped.

        Same quarantine and idempotency contract as :meth:`evacuate`.
        """
        return self._relocate(server, replacements, rebuild=True)

    def _relocate(
        self, server: str, replacements: Sequence[str], rebuild: bool
    ) -> Tuple[Dict[str, int], List[RebuildItem]]:
        if server in replacements:
            raise ValueError(f"cannot evacuate {server!r} onto itself")
        replacements = [r for r in replacements if r not in self._evacuated]
        if not replacements:
            raise ValueError("evacuation needs at least one healthy server")
        if server in self._evacuated:
            return {}, []
        self._evacuated.add(server)
        changed: Dict[str, int] = {}
        items: List[RebuildItem] = []
        for vd_id, index, seg in self.segments_on(server):
            new_bs = seg.block_server
            if new_bs == server:
                new_bs = replacements[
                    self._spread(seg.segment_id, "fo-bs") % len(replacements)
                ]
            new_reps = seg.replicas
            if server in new_reps:
                pool = [r for r in replacements if r not in new_reps]
                if not pool:
                    raise ValueError(
                        f"no replacement replica for {seg.segment_id}: all of "
                        f"{list(replacements)} already hold a copy"
                    )
                pick = pool[self._spread(seg.segment_id, "fo-rep") % len(pool)]
                pending = self._rebuilding.get(seg.segment_id)
                requeued = bool(pending) and server in pending
                if requeued:
                    pending.discard(server)
                if rebuild:
                    survivors = tuple(r for r in new_reps if r != server)
                    new_reps = survivors + (pick,)
                    pending = self._rebuilding.setdefault(seg.segment_id, set())
                    pending.add(pick)
                    sources = tuple(r for r in survivors if r not in pending)
                    items.append(
                        RebuildItem(
                            vd_id, index, seg.segment_id, seg.start_lba,
                            seg.num_blocks, pick, sources, requeued=requeued,
                        )
                    )
                else:
                    # Instant-evacuation semantics (no rebuild data plane):
                    # the pick takes the dead server's slot.  A pending
                    # marker that pointed at the dead server follows the
                    # replacement so the books stay consistent.
                    new_reps = tuple(pick if r == server else r for r in new_reps)
                    if requeued:
                        self._rebuilding[seg.segment_id].add(pick)
            self._segments[vd_id][index] = dataclasses.replace(
                seg, block_server=new_bs, replicas=new_reps
            )
            changed[vd_id] = changed.get(vd_id, 0) + 1
        return changed, items

    def complete_rebuild(self, segment_id: str, destination: str) -> bool:
        """Mark one pending destination as filled.  Returns ``False`` when
        the (segment, destination) pair is no longer pending — e.g. the
        destination died and its job was re-queued elsewhere."""
        pending = self._rebuilding.get(segment_id)
        if not pending or destination not in pending:
            return False
        pending.discard(destination)
        if not pending:
            del self._rebuilding[segment_id]
        return True

    @property
    def rebuilding(self) -> Dict[str, Tuple[str, ...]]:
        """Pending rebuilds: segment_id -> sorted destination names."""
        return {
            seg_id: tuple(sorted(dests))
            for seg_id, dests in sorted(self._rebuilding.items())
            if dests
        }

    def pending_destinations(self, segment_id: str) -> frozenset:
        return frozenset(self._rebuilding.get(segment_id, ()))

    def restore(self, server: str) -> None:
        """Lift a server's evacuation quarantine (it rejoined the fleet).

        Existing segments are not rebalanced back; the server simply
        becomes eligible for new placement and future evacuations again.
        Idempotent.
        """
        self._evacuated.discard(server)

    @property
    def evacuated(self) -> frozenset:
        """Servers currently quarantined by :meth:`evacuate`."""
        return frozenset(self._evacuated)

    # ------------------------------------------------------------------
    def segments_of(self, vd_id: str) -> List[Segment]:
        try:
            return self._segments[vd_id]
        except KeyError:
            raise UnmappedAddressError(f"VD {vd_id!r} not provisioned") from None

    def lookup(self, vd_id: str, lba: int) -> Segment:
        """Find the segment containing one LBA (binary search)."""
        segments = self.segments_of(vd_id)
        lo, hi = 0, len(segments) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            seg = segments[mid]
            if lba < seg.start_lba:
                hi = mid - 1
            elif lba >= seg.end_lba:
                lo = mid + 1
            else:
                return seg
        raise UnmappedAddressError(f"{vd_id!r} LBA {lba} outside provisioned range")

    def extents(self, vd_id: str, start_lba: int, num_blocks: int) -> List[Extent]:
        """Split an I/O into per-segment extents — the Block-table I/O
        splitting step of Figure 12 ("one for each block server")."""
        if num_blocks <= 0:
            raise ValueError(f"non-positive block count: {num_blocks}")
        extents: List[Extent] = []
        lba = start_lba
        remaining = num_blocks
        while remaining > 0:
            seg = self.lookup(vd_id, lba)
            take = min(remaining, seg.end_lba - lba)
            extents.append(Extent(seg, lba, take))
            lba += take
            remaining -= take
        return extents
