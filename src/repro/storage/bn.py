"""Backend network (BN) model.

§2.1: the BN is the small two-layer Clos inside one storage cluster; it is
uniform hardware, so AliCloud runs RDMA there for every generation under
study (Figure 6's caption: "The BN of LUNA and SOLAR is RDMA"), while the
"Kernel" configuration uses kernel TCP end to end.

Because the paper's comparisons only vary the *frontend* stack, the BN is
modelled as a calibrated request/response latency channel rather than a
second packet-level fabric: one-way delay = stack traversal + per-hop
switching + wire time + small jitter.  This keeps BN identical across the
compared systems — exactly the experimental control the paper uses — at a
fraction of the simulation cost.  (DESIGN.md records this substitution.)
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..profiles import Profiles, bytes_time_ns
from ..sim.engine import Simulator

#: Intra-cluster hop count: ToR -> spine -> ToR.
_BN_HOPS = 3

BN_MODES = ("rdma", "kernel")


class BackendNetwork:
    """Request/response transport between block and chunk servers."""

    def __init__(self, sim: Simulator, profiles: Profiles, mode: str = "rdma"):
        if mode not in BN_MODES:
            raise ValueError(f"BN mode must be one of {BN_MODES}, got {mode!r}")
        self.sim = sim
        self.profiles = profiles
        self.mode = mode
        self._rng = sim.rng.stream(f"bn/{mode}")
        self.calls = 0
        # Profiles are frozen dataclasses, so the size-independent part of
        # the delay is a constant of this BN — precomputed once instead of
        # chased through four profile attributes per RPC.
        net = profiles.network
        if mode == "rdma":
            stack = profiles.rdma.stack_latency_ns
        else:
            stack = profiles.kernel_tcp.stack_latency_ns
        self._fixed_ns = (
            2 * stack  # sender + receiver stack traversal
            + _BN_HOPS * (net.switch_forward_ns + net.link_propagation_ns)
            + net.link_propagation_ns
        )
        self._header_bytes = net.header_overhead_bytes
        self._fabric_gbps = net.fabric_gbps

    def one_way_ns(self, size_bytes: int) -> int:
        """Sampled one-way delay for a message of the given size."""
        wire = bytes_time_ns(size_bytes + self._header_bytes, self._fabric_gbps)
        jitter = math.exp(self._rng.gauss(0.0, 0.05))
        return max(1, int((self._fixed_ns + wire) * jitter))

    def call(
        self,
        handler: Callable[[Any, Callable[[Any, int], None]], None],
        request: Any,
        request_size: int,
        on_reply: Callable[[Any], None],
    ) -> None:
        """One RPC over the BN.

        ``handler(request, reply)`` runs at the callee after the request's
        one-way delay; the callee finishes by calling ``reply(value,
        size_bytes)``, which delivers ``value`` to ``on_reply`` after the
        response's one-way delay.
        """
        self.calls += 1

        def reply(value: Any, size_bytes: int) -> None:
            self.sim.schedule_fire(self.one_way_ns(size_bytes), on_reply, value)

        self.sim.schedule_fire(self.one_way_ns(request_size), handler, request, reply)
