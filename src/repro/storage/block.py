"""Data blocks: the atomic unit of EBS I/O.

§2.2: "all data is split into atomic units — data blocks whose size is 4K
bytes to be consistent with SSD's sector size — and all operations in SA
are in a per-block manner."  SOLAR then makes each block exactly one
packet (§4.4).

A block may carry real payload bytes (integrity experiments) or just a
declared size (performance experiments); CRC is computed over real bytes
when present, otherwise derived deterministically from the block identity
so protocol plumbing can still be exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..profiles import BLOCK_SIZE
from .crc import crc32


@dataclass
class DataBlock:
    """One 4KB (by default) block of a virtual disk."""

    vd_id: str
    lba: int  # logical block address, in units of blocks
    size_bytes: int = BLOCK_SIZE
    data: Optional[bytes] = None
    _crc: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise ValueError(f"negative LBA: {self.lba}")
        if self.size_bytes <= 0 or self.size_bytes > BLOCK_SIZE:
            raise ValueError(
                f"block size must be in (0, {BLOCK_SIZE}], got {self.size_bytes}"
            )
        if self.data is not None and len(self.data) != self.size_bytes:
            raise ValueError(
                f"payload length {len(self.data)} != declared size {self.size_bytes}"
            )

    @property
    def crc(self) -> int:
        """CRC32 of the payload (cached), or a synthetic stand-in."""
        if self._crc is None:
            if self.data is not None:
                self._crc = crc32(self.data)
            else:
                key = f"{self.vd_id}/{self.lba}/{self.size_bytes}".encode()
                self._crc = crc32(key)
        return self._crc

    def invalidate_crc(self) -> None:
        self._crc = None

    def with_data(self, data: bytes) -> "DataBlock":
        """Return a copy of this block carrying the given payload."""
        return DataBlock(self.vd_id, self.lba, len(data), data)

    @classmethod
    def random(
        cls, vd_id: str, lba: int, rng: random.Random, size_bytes: int = BLOCK_SIZE
    ) -> "DataBlock":
        """A block with reproducible random payload bytes."""
        data = rng.randbytes(size_bytes)
        return cls(vd_id, lba, size_bytes, data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        has_data = "data" if self.data is not None else "size-only"
        return f"<DataBlock {self.vd_id}@{self.lba} {self.size_bytes}B {has_data}>"


def split_into_blocks(
    vd_id: str, offset_bytes: int, length_bytes: int, block_size: int = BLOCK_SIZE
) -> list[DataBlock]:
    """Split a byte-addressed I/O into its covering block list.

    Offsets are block-aligned in EBS guests (the guest OS issues 4KB-aligned
    requests); misaligned requests are rejected loudly rather than silently
    rounded, because silent rounding corrupts LBA arithmetic downstream.
    """
    if offset_bytes % block_size:
        raise ValueError(f"offset {offset_bytes} not {block_size}-aligned")
    if length_bytes <= 0:
        raise ValueError(f"non-positive I/O length: {length_bytes}")
    first = offset_bytes // block_size
    count = (length_bytes + block_size - 1) // block_size
    blocks = []
    remaining = length_bytes
    for i in range(count):
        size = min(block_size, remaining)
        blocks.append(DataBlock(vd_id, first + i, size))
        remaining -= size
    return blocks
