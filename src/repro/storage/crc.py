"""CRC32 arithmetic, including the algebra SOLAR's integrity check uses.

§4.5: "CRC32 is deployed in FPGA, and the CPU merely verifies segment
level CRC with the CRC values for each data block in the segment.  It
essentially takes advantage of CRC32's divide-and-conquer property —
CRC(A XOR B) = CRC(A) XOR CRC(B)."

Two flavours are provided:

* :func:`crc32` — the standard (zlib-compatible) CRC-32: reflected
  polynomial 0xEDB88320, init 0xFFFFFFFF, final XOR 0xFFFFFFFF.  This is
  what travels in packet headers and what the FPGA computes per block.
* :func:`crc32_raw` — the *linear* core (init 0, no final XOR).  Over
  GF(2) this is a linear map, so for equal-length inputs
  ``crc32_raw(xor(A, B)) == crc32_raw(A) ^ crc32_raw(B)`` holds exactly —
  the identity the CPU-side aggregation check relies on.  The standard
  CRC is *affine*, not linear; :func:`crc32_xor_identity_offset` exposes
  the constant that relates the two forms for a given length.

:func:`crc32_combine` implements zlib's GF(2)-matrix combination, letting
the CPU compute the CRC of a whole segment from per-block CRCs without
re-reading any data — the "lightweight check on an aggregation of multiple
blocks' CRC values in software".
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Sequence

_POLY = 0xEDB88320
_MASK = 0xFFFFFFFF


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32_update_reference(crc: int, data: bytes) -> int:
    """Pure-Python table-driven register update.

    Kept as the executable specification: ``crc32_update`` delegates to
    ``zlib.crc32`` (same reflected polynomial, so the two are
    bit-identical — pinned by ``tests/test_crc.py``), and this is what
    it is checked against.
    """
    crc &= _MASK
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc


def crc32_update(crc: int, data: bytes) -> int:
    """Advance a raw (no init/xorout) CRC register over ``data``.

    ``zlib.crc32`` uses the same shift register but speaks the standard
    (init/xorout 0xFFFFFFFF) form, so the raw register is carried across
    the call by XOR-masking on the way in and out.
    """
    return zlib.crc32(data, (crc ^ _MASK) & _MASK) ^ _MASK


def crc32(data: bytes, crc: int = 0) -> int:
    """Standard CRC-32 (zlib/PKZip semantics)."""
    return zlib.crc32(data, crc & _MASK)


def crc32_raw(data: bytes) -> int:
    """The linear CRC core: init 0, no final XOR.

    Satisfies ``crc32_raw(A ^ B) == crc32_raw(A) ^ crc32_raw(B)`` for
    equal-length A, B, and ``crc32_raw(0^n) == 0``.
    """
    return crc32_update(0, data)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length strings."""
    n = len(a)
    if n != len(b):
        raise ValueError(f"xor_bytes length mismatch: {n} vs {len(b)}")
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(n, "little")


def crc32_xor_identity_offset(length: int) -> int:
    """The affine offset: ``crc32(A^B) == crc32(A) ^ crc32(B) ^ offset``.

    For the standard CRC the init/final XORs contribute a constant that
    depends only on the message length; it equals ``crc32(0^length)``.
    """
    return crc32(bytes(length))


# ----------------------------------------------------------------------
# GF(2) matrix combine (zlib's crc32_combine)
# ----------------------------------------------------------------------
def _gf2_matrix_times(mat: Sequence[int], vec: int) -> int:
    total = 0
    idx = 0
    while vec:
        if vec & 1:
            total ^= mat[idx]
        vec >>= 1
        idx += 1
    return total


def _gf2_matrix_square(square: List[int], mat: Sequence[int]) -> None:
    for n in range(32):
        square[n] = _gf2_matrix_times(mat, mat[n])


#: Cached operators for appending ``2**k`` zero *bytes*, built lazily.
#: Folding thousands of per-block CRCs used to rebuild these matrices on
#: every call; they depend only on the polynomial, never on the data.
_ZERO_BYTE_OPS: List[List[int]] = []


def _zero_byte_op(k: int) -> List[int]:
    ops = _ZERO_BYTE_OPS
    if not ops:
        # Operator for one zero bit: the CRC shift register step.
        mat = [0] * 32
        mat[0] = _POLY
        row = 1
        for n in range(1, 32):
            mat[n] = row
            row <<= 1
        for _ in range(3):  # square thrice: 1 bit -> 8 bits = 1 byte
            square = [0] * 32
            _gf2_matrix_square(square, mat)
            mat = square
        ops.append(mat)
    while len(ops) <= k:
        square = [0] * 32
        _gf2_matrix_square(square, ops[-1])
        ops.append(square)
    return ops[k]


def crc32_combine(crc1: int, crc2: int, len2: int) -> int:
    """CRC of the concatenation A||B given crc32(A), crc32(B), len(B).

    This is the software "divide-and-conquer" aggregation: per-block CRCs
    computed in hardware can be folded into a segment CRC on the CPU in
    O(log len) time per block, touching no payload bytes.
    """
    if len2 < 0:
        raise ValueError(f"negative length: {len2}")
    if len2 == 0:
        return crc1 & _MASK

    crc1 &= _MASK
    crc2 &= _MASK
    k = 0
    while len2:
        if len2 & 1:
            crc1 = _gf2_matrix_times(_zero_byte_op(k), crc1)
        len2 >>= 1
        k += 1
    return (crc1 ^ crc2) & _MASK


def crc32_of_concat(block_crcs: Iterable[int], block_len: int) -> int:
    """Fold equal-length per-block CRCs into the CRC of the concatenation."""
    result = 0
    first = True
    for crc in block_crcs:
        if first:
            result = crc & _MASK
            first = False
        else:
            result = crc32_combine(result, crc, block_len)
    return result
