"""QoS table: per-VD admission control (Figure 2, Figure 12 'QoS' step).

Each virtual disk has a purchased service level measured in both IOPS and
bandwidth; the SA's QoS step admits each I/O against both token buckets
and delays (never drops) requests that exceed the momentary budget.
Figure 6's production traces exclude policy-based QoS queueing, and the
end-to-end experiments here do the same by provisioning generous limits —
but the mechanism itself is real and tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


class TokenBucket:
    """Continuous-refill token bucket measured in integer-ns time."""

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive: {rate_per_s}, {burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.tokens = burst
        self.last_ns = 0

    def _refill(self, now_ns: int) -> None:
        if now_ns < self.last_ns:
            raise ValueError("time went backwards in token bucket")
        self.tokens = min(
            self.burst, self.tokens + (now_ns - self.last_ns) * self.rate_per_s / 1e9
        )
        self.last_ns = now_ns

    def reserve(self, now_ns: int, amount: float) -> int:
        """Take ``amount`` tokens; return the ns delay until they exist.

        Debt-based shaping: the tokens are always consumed, and the caller
        must wait the returned delay before proceeding.  This serializes
        admitted work at the configured rate without an explicit queue.
        """
        if amount <= 0:
            raise ValueError(f"non-positive reservation: {amount}")
        self._refill(now_ns)
        self.tokens -= amount
        if self.tokens >= 0:
            return 0
        return int(-self.tokens / self.rate_per_s * 1e9) + 1


@dataclass(frozen=True)
class QosSpec:
    """A VD's purchased service level (Figure 2's QoS table row)."""

    iops_limit: float
    bandwidth_bps: float
    burst_ios: float = 256
    burst_bytes: float = 4 * 1024 * 1024


class QosTable:
    """Per-VD admission control over IOPS and bandwidth simultaneously."""

    def __init__(self) -> None:
        self._specs: Dict[str, QosSpec] = {}
        self._io_buckets: Dict[str, TokenBucket] = {}
        self._bw_buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.delayed = 0

    def install(self, vd_id: str, spec: QosSpec) -> None:
        self._specs[vd_id] = spec
        self._io_buckets[vd_id] = TokenBucket(spec.iops_limit, spec.burst_ios)
        self._bw_buckets[vd_id] = TokenBucket(spec.bandwidth_bps / 8, spec.burst_bytes)

    def spec(self, vd_id: str) -> QosSpec:
        try:
            return self._specs[vd_id]
        except KeyError:
            raise KeyError(f"no QoS spec installed for VD {vd_id!r}") from None

    def admit(self, vd_id: str, now_ns: int, io_size_bytes: int) -> int:
        """Admission-check one I/O; returns the delay (ns) before it may
        proceed.  An uninstalled VD is an error — admission is mandatory."""
        if vd_id not in self._specs:
            raise KeyError(f"no QoS spec installed for VD {vd_id!r}")
        delay_io = self._io_buckets[vd_id].reserve(now_ns, 1)
        delay_bw = self._bw_buckets[vd_id].reserve(now_ns, io_size_bytes)
        delay = max(delay_io, delay_bw)
        if delay > 0:
            self.delayed += 1
        else:
            self.admitted += 1
        return delay
