"""Storage substrate: blocks, CRC algebra, crypto, SSDs, chunk/block
servers, segment and QoS tables, replication, and the backend network."""

from .block import DataBlock, split_into_blocks
from .block_server import BlockServer
from .bn import BackendNetwork
from .chunk_server import ChunkReply, ChunkRequest, ChunkServer
from .crc import (
    crc32,
    crc32_combine,
    crc32_of_concat,
    crc32_raw,
    crc32_xor_identity_offset,
    xor_bytes,
)
from .crypto import BlockCipher, maybe_decrypt, maybe_encrypt
from .qos import QosSpec, QosTable, TokenBucket
from .replication import QuorumTracker
from .segment_table import (
    BLOCKS_PER_SEGMENT,
    Extent,
    SEGMENT_BYTES,
    Segment,
    SegmentTable,
    UnmappedAddressError,
)
from .ssd import SsdDevice, lognormal_around

__all__ = [
    "DataBlock",
    "split_into_blocks",
    "crc32",
    "crc32_raw",
    "crc32_combine",
    "crc32_of_concat",
    "crc32_xor_identity_offset",
    "xor_bytes",
    "BlockCipher",
    "maybe_encrypt",
    "maybe_decrypt",
    "SsdDevice",
    "lognormal_around",
    "ChunkServer",
    "ChunkRequest",
    "ChunkReply",
    "BlockServer",
    "BackendNetwork",
    "QuorumTracker",
    "Segment",
    "Extent",
    "SegmentTable",
    "UnmappedAddressError",
    "SEGMENT_BYTES",
    "BLOCKS_PER_SEGMENT",
    "QosTable",
    "QosSpec",
    "TokenBucket",
]
