"""Block encryption stand-in (the SEC module of Figures 12/13).

EBS optionally encrypts block payloads in the SA datapath.  The real
deployment uses hardware crypto engines; this reproduction needs a
*reversible, keyed, deterministic, tweakable* byte transform so that the
datapath (encrypt on WRITE, decrypt on READ, corruption detection through
it) can be exercised end to end.  We use a BLAKE2b keystream XOR keyed by
(key, vd_id, lba) — an XTS-like construction in shape.

**This is not a secure cipher**; it is a simulation artifact.  The point
is that encryption is a real per-byte pass over the payload with a
per-block tweak, so integrity and cost accounting behave like the real
thing.
"""

from __future__ import annotations

import hashlib
from typing import Optional


class BlockCipher:
    """Deterministic keyed keystream cipher with per-(vd, lba) tweak."""

    DIGEST = 64  # BLAKE2b max digest size per keystream chunk

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("empty cipher key")
        self.key = hashlib.blake2b(key, digest_size=32).digest()

    def _keystream(self, vd_id: str, lba: int, length: int) -> bytes:
        out = bytearray()
        counter = 0
        tweak = f"{vd_id}|{lba}".encode()
        while len(out) < length:
            chunk = hashlib.blake2b(
                tweak + counter.to_bytes(8, "little"),
                key=self.key,
                digest_size=self.DIGEST,
            ).digest()
            out.extend(chunk)
            counter += 1
        return bytes(out[:length])

    def encrypt(self, vd_id: str, lba: int, plaintext: bytes) -> bytes:
        n = len(plaintext)
        stream = self._keystream(vd_id, lba, n)
        return (
            int.from_bytes(plaintext, "little") ^ int.from_bytes(stream, "little")
        ).to_bytes(n, "little")

    def decrypt(self, vd_id: str, lba: int, ciphertext: bytes) -> bytes:
        # XOR keystream is an involution.
        return self.encrypt(vd_id, lba, ciphertext)


def maybe_encrypt(
    cipher: Optional[BlockCipher], vd_id: str, lba: int, data: Optional[bytes]
) -> Optional[bytes]:
    """Encrypt if both a cipher and real payload bytes are present."""
    if cipher is None or data is None:
        return data
    return cipher.encrypt(vd_id, lba, data)


def maybe_decrypt(
    cipher: Optional[BlockCipher], vd_id: str, lba: int, data: Optional[bytes]
) -> Optional[bytes]:
    if cipher is None or data is None:
        return data
    return cipher.decrypt(vd_id, lba, data)
