"""Chunk servers: the machines that own physical SSDs.

Block servers fan each WRITE out to (typically) three chunk servers
(§2.2, Figure 2 step: "write the data into chunk servers with multiple
copies").  A chunk server charges CPU for LSM/checksum work, then performs
the SSD operation, then replies.

The chunk store keeps real payload bytes (and their CRCs) when blocks
carry data, so end-to-end integrity experiments read back exactly what
survived the datapath — corruptions injected anywhere upstream are
faithfully persisted and later detected.

Besides guest "write"/"read" requests, chunk servers serve the
re-replication data plane (`repro.rebuild`): ``rebuild_read`` streams a
chunk-sized run of stored blocks off a surviving replica, and
``rebuild_write`` installs them on the new replica.  Both charge the same
CPU and SSD resources as foreground I/O, so rebuild storms genuinely
contend with guest traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..profiles import BLOCK_SIZE, SsdProfile
from ..host.server import StorageServer
from ..sim.engine import Simulator
from .block import DataBlock
from .crc import crc32
from .ssd import SsdDevice

#: (lba, payload-or-None, crc) rows moved by one rebuild transfer chunk.
RebuildEntry = Tuple[int, Optional[bytes], int]

CHUNK_REQUEST_KINDS = ("write", "read", "rebuild_read", "rebuild_write")


@dataclass
class ChunkRequest:
    """A BN request to a chunk server."""

    kind: str  # one of CHUNK_REQUEST_KINDS
    segment_id: str
    vd_id: str
    lba: int
    size_bytes: int
    data: Optional[bytes] = None
    crc: Optional[int] = None
    #: rebuild_write only: the stored rows to install at the destination.
    entries: List[RebuildEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in CHUNK_REQUEST_KINDS:
            raise ValueError(f"bad chunk request kind: {self.kind!r}")


@dataclass
class ChunkReply:
    ok: bool
    kind: str
    segment_id: str
    lba: int
    size_bytes: int
    data: Optional[bytes] = None
    crc: Optional[int] = None
    #: rebuild_read only: the stored rows found in the chunk's LBA range.
    entries: List[RebuildEntry] = field(default_factory=list)
    error: str = ""
    #: Time spent inside the chunk server (CPU + SSD), for trace splitting:
    #: Figure 6's "SSD" component "includes the processing time in chunk
    #: servers and I/O in physical SSDs".
    service_ns: int = 0


class ChunkServer:
    """One chunk server: CPU + SSD + the chunk store."""

    def __init__(
        self,
        sim: Simulator,
        server: StorageServer,
        profile: SsdProfile,
        store_payloads: bool = True,
    ):
        self.sim = sim
        self.server = server
        self.profile = profile
        self.store_payloads = store_payloads
        self.ssd = SsdDevice(sim, f"{server.name}/ssd", profile)
        #: (segment_id, lba) -> (payload or None, crc)
        self.store: Dict[Tuple[str, int], Tuple[Optional[bytes], int]] = {}
        self.writes_served = 0
        self.reads_served = 0
        self.rebuild_reads_served = 0
        self.rebuild_writes_served = 0
        #: Commit-aggregation state (§2.3 fn.1): writes arriving within
        #: one window batch into a single sequential device commit.
        self._commit_batch: list = []
        self._commit_timer_armed = False
        self.commits = 0
        self.batched_writes = 0

    @property
    def name(self) -> str:
        return self.server.name

    # ------------------------------------------------------------------
    def handle(self, request: ChunkRequest, reply: Callable[[ChunkReply, int], None]) -> None:
        """BN entry point (see :meth:`repro.storage.bn.BackendNetwork.call`)."""
        start_ns = self.sim.now
        core = self.server.cpu.least_loaded()
        core.submit(self.profile.chunk_cpu_ns, self._after_cpu, request, reply, start_ns)

    def _after_cpu(self, request: ChunkRequest, reply, start_ns: int) -> None:
        if request.kind == "write":
            if self.profile.commit_aggregation_ns > 0:
                self._enqueue_commit(request, reply, start_ns)
            else:
                self.ssd.submit_write(
                    request.size_bytes, self._finish_write, request, reply, start_ns
                )
        elif request.kind == "read":
            self.ssd.submit_read(
                request.size_bytes, self._finish_read, request, reply, start_ns
            )
        elif request.kind == "rebuild_read":
            self.ssd.submit_read(
                request.size_bytes, self._finish_rebuild_read, request, reply, start_ns
            )
        else:  # rebuild_write: one bulk sequential commit, no aggregation
            self.ssd.submit_write(
                request.size_bytes, self._finish_rebuild_write, request, reply, start_ns
            )

    # ------------------------------------------------------------------
    # Commit aggregation (§2.3 fn.1: LSM + commit aggregation turn random
    # writes sequential — many small writes share one device commit).
    # ------------------------------------------------------------------
    def _enqueue_commit(self, request: ChunkRequest, reply, start_ns: int) -> None:
        self._commit_batch.append((request, reply, start_ns))
        if not self._commit_timer_armed:
            self._commit_timer_armed = True
            self.sim.schedule(self.profile.commit_aggregation_ns, self._flush_commits)

    def _flush_commits(self) -> None:
        self._commit_timer_armed = False
        batch, self._commit_batch = self._commit_batch, []
        if not batch:
            return
        self.commits += 1
        self.batched_writes += len(batch)
        total_bytes = sum(req.size_bytes for req, _reply, _t in batch)
        # One sequential commit covers the whole batch; every member
        # completes when the commit lands.
        self.ssd.submit_write(total_bytes, self._finish_batch, batch)

    def _finish_batch(self, batch: list) -> None:
        for request, reply, start_ns in batch:
            self._finish_write_stored(request, reply, start_ns)

    def _finish_write_stored(self, request: ChunkRequest, reply, start_ns: int) -> None:
        """Common completion used by both direct and batched writes."""
        key = (request.segment_id, request.lba)
        payload = request.data if self.store_payloads else None
        crc = request.crc if request.crc is not None else _synthetic_crc(request)
        self.store[key] = (payload, crc)
        self.writes_served += 1
        reply(
            ChunkReply(
                True, "write", request.segment_id, request.lba, request.size_bytes,
                service_ns=self.sim.now - start_ns,
            ),
            64,  # ack frame
        )

    def _finish_write(self, request: ChunkRequest, reply, start_ns: int) -> None:
        self._finish_write_stored(request, reply, start_ns)

    def _finish_read(self, request: ChunkRequest, reply, start_ns: int) -> None:
        key = (request.segment_id, request.lba)
        stored = self.store.get(key)
        if stored is None:
            # Reading never-written space returns zeros, like a fresh disk.
            data = bytes(request.size_bytes) if self.store_payloads else None
            crc = crc32(bytes(request.size_bytes))
        else:
            data, crc = stored
        self.reads_served += 1
        reply(
            ChunkReply(
                True, "read", request.segment_id, request.lba, request.size_bytes,
                data=data, crc=crc, service_ns=self.sim.now - start_ns,
            ),
            request.size_bytes + 64,
        )

    # ------------------------------------------------------------------
    # Re-replication (repro.rebuild): chunk-granular replica copies.
    # ------------------------------------------------------------------
    def _finish_rebuild_read(self, request: ChunkRequest, reply, start_ns: int) -> None:
        """Stream every stored block in [lba, lba + size/BLOCK) to a peer."""
        entries: List[RebuildEntry] = []
        for lba in range(request.lba, request.lba + request.size_bytes // BLOCK_SIZE):
            stored = self.store.get((request.segment_id, lba))
            if stored is not None:
                entries.append((lba, stored[0], stored[1]))
        self.rebuild_reads_served += 1
        reply(
            ChunkReply(
                True, "rebuild_read", request.segment_id, request.lba,
                request.size_bytes, entries=entries,
                service_ns=self.sim.now - start_ns,
            ),
            request.size_bytes + 64,
        )

    def _finish_rebuild_write(self, request: ChunkRequest, reply, start_ns: int) -> None:
        """Install copied rows.  ``setdefault`` semantics: a foreground
        write that raced ahead of the copy already holds fresher bytes at
        the destination and must never be clobbered by rebuild data."""
        for lba, payload, crc in request.entries:
            self.store.setdefault((request.segment_id, lba), (payload, crc))
        self.rebuild_writes_served += 1
        reply(
            ChunkReply(
                True, "rebuild_write", request.segment_id, request.lba,
                request.size_bytes, service_ns=self.sim.now - start_ns,
            ),
            64,  # ack frame
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChunkServer {self.name} blocks={len(self.store)}>"


def _synthetic_crc(request: ChunkRequest) -> int:
    block = DataBlock(request.vd_id, request.lba, request.size_bytes)
    return block.crc
