"""Access-pattern generators: where on the disk the next I/O lands.

The fio driver defaults to uniform-random aligned offsets; real guests
are rarely uniform.  These samplers provide the usual suspects:

* sequential — log appends, scans, backup streams;
* uniform random — the fio default;
* zipfian — skewed access (hot pages), the pattern that makes chunk-side
  caches and LSM write-staging matter;
* strided — columnar scans and RAID-ish layouts.

All samplers return block-aligned byte offsets such that
``offset + io_size <= disk_size``.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Protocol

from ..profiles import BLOCK_SIZE


class OffsetPattern(Protocol):
    def next_offset(self, io_size: int) -> int: ...


def _usable_blocks(disk_size: int, io_size: int) -> int:
    blocks = (disk_size - io_size) // BLOCK_SIZE + 1
    if blocks < 1:
        raise ValueError(
            f"I/O of {io_size}B does not fit a {disk_size}B disk"
        )
    return blocks


class SequentialPattern:
    """Monotonic append that wraps at the end of the disk."""

    def __init__(self, disk_size: int, start_offset: int = 0):
        if start_offset % BLOCK_SIZE:
            raise ValueError(f"start offset {start_offset} not block-aligned")
        self.disk_size = disk_size
        self._next = start_offset

    def next_offset(self, io_size: int) -> int:
        if self._next + io_size > self.disk_size:
            self._next = 0
        offset = self._next
        self._next += ((io_size + BLOCK_SIZE - 1) // BLOCK_SIZE) * BLOCK_SIZE
        return offset


class UniformPattern:
    """Uniform random aligned offsets."""

    def __init__(self, disk_size: int, rng: random.Random):
        self.disk_size = disk_size
        self.rng = rng

    def next_offset(self, io_size: int) -> int:
        return self.rng.randrange(_usable_blocks(self.disk_size, io_size)) * BLOCK_SIZE


class ZipfianPattern:
    """Zipf-distributed block popularity over a shuffled block space.

    ``theta`` in (0, 1): higher = more skew.  Uses the bounded-harmonic
    inverse-CDF method over ``hot_set`` ranks mapped pseudo-randomly onto
    the disk so hot blocks are scattered, not clustered.
    """

    def __init__(self, disk_size: int, rng: random.Random, theta: float = 0.99,
                 hot_set: int = 4096):
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0,1), got {theta}")
        if hot_set < 1:
            raise ValueError("hot_set must be positive")
        self.disk_size = disk_size
        self.rng = rng
        self.theta = theta
        self.hot_set = hot_set
        weights = [1.0 / math.pow(rank, theta) for rank in range(1, hot_set + 1)]
        total = sum(weights)
        self._cdf: list = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def next_offset(self, io_size: int) -> int:
        blocks = _usable_blocks(self.disk_size, io_size)
        rank = bisect.bisect_left(self._cdf, self.rng.random())
        rank = min(rank, self.hot_set - 1)
        # Scatter ranks across the disk deterministically (multiplicative
        # hashing by a large odd constant).
        block = (rank * 2654435761) % blocks
        return block * BLOCK_SIZE


class StridedPattern:
    """Fixed-stride walk (e.g. every Nth block), wrapping at the end."""

    def __init__(self, disk_size: int, stride_blocks: int, start_offset: int = 0):
        if stride_blocks < 1:
            raise ValueError("stride must be at least one block")
        self.disk_size = disk_size
        self.stride = stride_blocks * BLOCK_SIZE
        self._next = start_offset

    def next_offset(self, io_size: int) -> int:
        if self._next + io_size > self.disk_size:
            self._next = (self._next + self.stride) % self.stride or 0
            if self._next + io_size > self.disk_size:
                self._next = 0
        offset = self._next
        self._next += self.stride
        if self._next + io_size > self.disk_size:
            self._next = (offset + BLOCK_SIZE) % self.stride
        return offset
