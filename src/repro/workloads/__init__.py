"""Workload generation: fio-like closed-loop jobs and production-shaped
open-loop traffic (Figures 3-5's distributions)."""

from .distributions import (
    EBS_TX_SHARE,
    IO_SIZE_PMF,
    READ_FRACTION,
    SizeDistribution,
    diurnal_iops,
    sample_kind,
    weekly_modulation,
)
from .fio import FioJob, FioResult, FioSpec, run_fio
from .production import (
    ProductionWorkload,
    TrafficSample,
    synthesize_day,
    synthesize_week,
)

__all__ = [
    "FioSpec",
    "FioJob",
    "FioResult",
    "run_fio",
    "ProductionWorkload",
    "TrafficSample",
    "synthesize_week",
    "synthesize_day",
    "SizeDistribution",
    "IO_SIZE_PMF",
    "READ_FRACTION",
    "EBS_TX_SHARE",
    "sample_kind",
    "diurnal_iops",
    "weekly_modulation",
]

from .replay import (  # noqa: E402
    IoRecord,
    TraceFormatError,
    TraceRecorder,
    load_trace,
    replay,
)

__all__ += ["IoRecord", "TraceFormatError", "TraceRecorder", "load_trace", "replay"]

from .patterns import (  # noqa: E402
    SequentialPattern,
    StridedPattern,
    UniformPattern,
    ZipfianPattern,
)

__all__ += ["SequentialPattern", "UniformPattern", "ZipfianPattern", "StridedPattern"]
