"""A fio-like closed-loop workload driver.

Reproduces the testbed methodology of Figures 14/15 and Table 2: a fixed
I/O depth of outstanding operations per job, fixed or mixed block sizes,
a read/write ratio, random aligned offsets, and summary statistics
(IOPS, throughput, latency percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..agent.base import IoRequest
from ..ebs.virtual_disk import VirtualDisk
from ..metrics.stats import LatencyStats
from ..profiles import BLOCK_SIZE
from ..sim.engine import Simulator


@dataclass(frozen=True)
class FioSpec:
    """One fio job description."""

    block_sizes: Sequence[int] = (4096,)
    iodepth: int = 32
    read_fraction: float = 1.0  # 1.0 = pure read, 0.0 = pure write
    #: Stop issuing after this simulated time; in-flight I/Os may drain.
    runtime_ns: int = 20_000_000  # 20 ms of simulated time
    name: str = "fio"
    #: Offset pattern: "random" (fio's randread/randwrite), "sequential",
    #: or "zipfian" (skewed hot set) — see repro.workloads.patterns.
    pattern: str = "random"

    def __post_init__(self) -> None:
        if self.iodepth < 1:
            raise ValueError(f"iodepth must be >= 1, got {self.iodepth}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read fraction out of range: {self.read_fraction}")
        if any(b <= 0 or b % BLOCK_SIZE for b in self.block_sizes):
            raise ValueError(f"block sizes must be positive multiples of {BLOCK_SIZE}")
        if self.pattern not in ("random", "sequential", "zipfian"):
            raise ValueError(f"unknown access pattern {self.pattern!r}")


@dataclass
class FioResult:
    """Job summary, fio-style."""

    completed: int
    failed: int
    duration_ns: int
    bytes_moved: int
    latency: LatencyStats

    @property
    def iops(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.completed / (self.duration_ns / 1e9)

    @property
    def throughput_mbps(self) -> float:
        """Goodput in MB/s (the Figure 14a unit)."""
        if self.duration_ns <= 0:
            return 0.0
        return self.bytes_moved / (1024 * 1024) / (self.duration_ns / 1e9)


class FioJob:
    """Closed-loop driver keeping ``iodepth`` I/Os outstanding on one VD."""

    def __init__(
        self,
        sim: Simulator,
        vd: VirtualDisk,
        spec: FioSpec,
        on_issue: Optional[Callable[[IoRequest], None]] = None,
    ):
        self.sim = sim
        self.vd = vd
        self.spec = spec
        #: Observer called with each IoRequest as it is submitted — e.g. an
        #: IoHangMonitor's ``watch`` so hangs are counted under faults.
        self.on_issue = on_issue
        self._rng = sim.rng.stream(f"fio/{spec.name}/{vd.vd_id}")
        if spec.pattern == "sequential":
            from .patterns import SequentialPattern

            self._pattern = SequentialPattern(vd.size_bytes)
        elif spec.pattern == "zipfian":
            from .patterns import ZipfianPattern

            self._pattern = ZipfianPattern(vd.size_bytes, self._rng)
        else:
            self._pattern = None  # uniform via _pick_offset
        self.latency = LatencyStats(spec.name)
        self.completed = 0
        self.failed = 0
        self.bytes_moved = 0
        self.inflight = 0
        self._started_ns: Optional[int] = None
        self._deadline_ns: Optional[int] = None
        self._stopped = False
        #: Completion timestamps of I/Os that exceeded the hang threshold —
        #: populated by the deployment-level hang monitor if attached.
        self.issues: int = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started_ns is not None:
            raise RuntimeError("fio job started twice")
        self._started_ns = self.sim.now
        self._deadline_ns = self.sim.now + self.spec.runtime_ns
        for _ in range(self.spec.iodepth):
            self._issue_one()

    def _pick_offset(self, size: int) -> int:
        if self._pattern is not None:
            return self._pattern.next_offset(size)
        max_block = (self.vd.size_bytes - size) // BLOCK_SIZE
        return self._rng.randint(0, max_block) * BLOCK_SIZE

    def _issue_one(self) -> None:
        if self._stopped or self.sim.now >= self._deadline_ns:
            return
        size = self._rng.choice(list(self.spec.block_sizes))
        offset = self._pick_offset(size)
        self.inflight += 1
        self.issues += 1
        if self._rng.random() < self.spec.read_fraction:
            io = self.vd.read(offset, size, self._on_complete)
        else:
            io = self.vd.write(offset, size, self._on_complete)
        if self.on_issue is not None:
            self.on_issue(io)

    def _on_complete(self, io: IoRequest) -> None:
        self.inflight -= 1
        if io.trace is not None and io.trace.ok:
            self.completed += 1
            self.bytes_moved += io.size_bytes
            self.latency.record(io.trace.total_ns)
        else:
            self.failed += 1
        self._issue_one()

    def stop(self) -> None:
        self._stopped = True

    def result(self) -> FioResult:
        if self._started_ns is None:
            raise RuntimeError("fio job never started")
        duration = min(self.sim.now, self._deadline_ns or self.sim.now) - self._started_ns
        # If the run drained early, measure over actual elapsed time.
        duration = max(duration, 1)
        return FioResult(
            self.completed, self.failed, duration, self.bytes_moved, self.latency
        )


def run_fio(
    sim: Simulator,
    vds: List[VirtualDisk],
    spec: FioSpec,
    settle_ns: int = 0,
) -> Dict[str, FioResult]:
    """Run one fio spec across several VDs concurrently; returns per-VD
    results keyed by vd_id.  The simulator is advanced to completion of
    the runtime window plus drain."""
    jobs = [FioJob(sim, vd, spec) for vd in vds]
    for job in jobs:
        sim.schedule(settle_ns, job.start)
    sim.run(until=sim.now + settle_ns + spec.runtime_ns)
    for job in jobs:
        job.stop()
    sim.run(until=sim.now + 50_000_000)  # 50 ms drain budget
    return {job.vd.vd_id: job.result() for job in jobs}
