"""Production-shaped workload generation (Figures 3, 4, 5).

Two layers:

* :class:`ProductionWorkload` — an open-loop Poisson I/O generator against
  a live deployment, with the Figure 5 size mix and Figure 3 read/write
  ratio.  Used for "under production load" experiments.
* :func:`synthesize_week` / :func:`synthesize_day` — fleet-level traffic
  synthesis for regenerating Figure 3's week of per-server traffic and
  Figure 4's per-minute IOPS day, without simulating 100K servers packet
  by packet (the figures are fleet telemetry, not protocol behaviour).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..agent.base import IoRequest
from ..ebs.virtual_disk import VirtualDisk
from ..metrics.stats import LatencyStats
from ..sim.engine import Simulator
from .distributions import (
    EBS_TX_SHARE,
    READ_FRACTION,
    SizeDistribution,
    diurnal_iops,
    weekly_modulation,
)


class ProductionWorkload:
    """Open-loop Poisson arrivals with the production size/kind mix."""

    def __init__(
        self,
        sim: Simulator,
        vd: VirtualDisk,
        target_iops: float,
        duration_ns: int,
        sizes: Optional[SizeDistribution] = None,
        read_fraction: float = READ_FRACTION,
        name: str = "prod",
    ):
        if target_iops <= 0:
            raise ValueError(f"target IOPS must be positive: {target_iops}")
        self.sim = sim
        self.vd = vd
        self.target_iops = target_iops
        self.duration_ns = duration_ns
        self.sizes = sizes or SizeDistribution()
        self.read_fraction = read_fraction
        self._rng = sim.rng.stream(f"prod/{name}/{vd.vd_id}")
        self.latency = LatencyStats(name)
        self.read_latency = LatencyStats(f"{name}/read")
        self.write_latency = LatencyStats(f"{name}/write")
        self.issued = 0
        self.completed = 0
        self.failed = 0
        self._deadline: Optional[int] = None

    def start(self) -> None:
        self._deadline = self.sim.now + self.duration_ns
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap_ns = int(self._rng.expovariate(self.target_iops) * 1e9)
        self.sim.schedule(gap_ns, self._issue)

    def _issue(self) -> None:
        if self.sim.now >= (self._deadline or 0):
            return
        size = self.sizes.sample(self._rng)
        size = min(size, self.vd.size_bytes)
        max_block = (self.vd.size_bytes - size) // 4096
        offset = self._rng.randint(0, max_block) * 4096
        kind = "read" if self._rng.random() < self.read_fraction else "write"
        self.issued += 1
        if kind == "read":
            self.vd.read(offset, size, self._done)
        else:
            self.vd.write(offset, size, self._done)
        self._schedule_next()

    def _done(self, io: IoRequest) -> None:
        if io.trace is not None and io.trace.ok:
            self.completed += 1
            self.latency.record(io.trace.total_ns)
            (self.read_latency if io.kind == "read" else self.write_latency).record(
                io.trace.total_ns
            )
        else:
            self.failed += 1


# ----------------------------------------------------------------------
# Fleet-telemetry synthesis (Figures 3 and 4)
# ----------------------------------------------------------------------
@dataclass
class TrafficSample:
    """One telemetry bucket of fleet-average per-server traffic."""

    t_hours: float
    ebs_rx_gbps: float
    ebs_tx_gbps: float
    all_rx_gbps: float
    all_tx_gbps: float
    read_iops: float
    write_iops: float


def synthesize_week(
    seed: int = 0,
    buckets_per_day: int = 24,
    mean_io_bytes: Optional[float] = None,
    base_iops: float = 9_000.0,
) -> List[TrafficSample]:
    """A week of hourly fleet-average traffic in the shape of Figure 3.

    ``base_iops`` is the *fleet-average per-server* write+read request
    rate (Figure 3b hovers around 6-10K write IOPS per server on
    average); Figure 4's 200K is a highly-loaded single server, not the
    average.
    """
    rng = random.Random(seed)
    sizes = SizeDistribution()
    mean_bytes = mean_io_bytes if mean_io_bytes is not None else sizes.mean_bytes()
    samples: List[TrafficSample] = []
    for day in range(7):
        for b in range(buckets_per_day):
            hour = 24.0 * b / buckets_per_day
            level = (
                diurnal_iops(hour, base_iops * 0.6, base_iops * 1.4)
                * weekly_modulation(day)
                * rng.uniform(0.93, 1.07)
            )
            write_iops = level * (1 - READ_FRACTION)
            read_iops = level * READ_FRACTION
            # TX from a compute server = WRITE payloads (3 copies are a
            # BN affair); RX = READ payloads.
            ebs_tx = write_iops * mean_bytes * 8 / 1e9
            ebs_rx = read_iops * mean_bytes * 8 / 1e9
            all_tx = ebs_tx / EBS_TX_SHARE
            all_rx = ebs_rx / max(0.25, EBS_TX_SHARE - 0.18)
            samples.append(
                TrafficSample(
                    day * 24 + hour, ebs_rx, ebs_tx, all_rx, all_tx, read_iops, write_iops
                )
            )
    return samples


def synthesize_day(
    seed: int = 0,
    minutes: int = 24 * 60,
    base_iops: float = 60_000.0,
    peak_iops: float = 200_000.0,
) -> List[Tuple[float, float]]:
    """Per-minute IOPS for a highly-loaded server (Figure 4): the diurnal
    curve plus per-minute burst noise and occasional spikes."""
    rng = random.Random(seed)
    series: List[Tuple[float, float]] = []
    for minute in range(minutes):
        hour = (minute / 60.0) % 24.0
        level = diurnal_iops(hour, base_iops, peak_iops)
        level *= rng.lognormvariate(0.0, 0.10)
        if rng.random() < 0.01:  # rare bursts visible in Figure 4
            level *= rng.uniform(1.3, 1.8)
        series.append((minute / 60.0, level))
    return series
