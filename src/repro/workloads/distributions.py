"""Production traffic distributions (§2.3, Figures 3-5).

The paper publishes the shapes directly:

* Figure 5 — I/O and RPC sizes: everything ≤ 256KB, ~40% of RPCs ≤ 4KB,
  modes at 4K/16K/64K;
* Figures 3a/3b — WRITE I/O is 3-4x READ in both volume and rate; EBS is
  ~63% of TX traffic / ~51% of all traffic;
* Figure 4 — a loaded server sees up to ~200K IOPS with a diurnal curve.

These generators re-emit those shapes deterministically from a seed.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

KB = 1024

#: (size_bytes, probability) fitted to Figure 5's I/O-size CDF.
IO_SIZE_PMF: Tuple[Tuple[int, float], ...] = (
    (4 * KB, 0.40),
    (8 * KB, 0.10),
    (16 * KB, 0.22),
    (32 * KB, 0.08),
    (64 * KB, 0.14),
    (128 * KB, 0.04),
    (256 * KB, 0.02),
)

#: Figure 3: WRITE requests are 3-4x READ → ~22% reads.
READ_FRACTION = 0.22

#: Figure 3a: EBS share of server TX traffic.
EBS_TX_SHARE = 0.63


@dataclass
class SizeDistribution:
    """Discrete size sampler with an inverse-CDF and a CDF report."""

    pmf: Sequence[Tuple[int, float]] = IO_SIZE_PMF
    _cum: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        total = sum(p for _s, p in self.pmf)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"size PMF sums to {total}, expected 1.0")
        acc = 0.0
        self._cum = []
        for _size, p in self.pmf:
            acc += p
            self._cum.append(acc)

    def sample(self, rng: random.Random) -> int:
        r = rng.random()
        index = bisect.bisect_left(self._cum, r)
        return self.pmf[min(index, len(self.pmf) - 1)][0]

    def cdf(self) -> List[Tuple[int, float]]:
        """(size, cumulative fraction) pairs — a Figure 5 curve."""
        return [(self.pmf[i][0], self._cum[i]) for i in range(len(self.pmf))]

    def mean_bytes(self) -> float:
        return sum(s * p for s, p in self.pmf)


def sample_kind(rng: random.Random, read_fraction: float = READ_FRACTION) -> str:
    """Draw 'read' or 'write' with the production mix."""
    return "read" if rng.random() < read_fraction else "write"


def diurnal_iops(hour_of_day: float, base_iops: float = 60_000.0,
                 peak_iops: float = 200_000.0) -> float:
    """Figure 4's daily IOPS curve for a highly-loaded server.

    A smooth day/night sinusoid (trough ~04:00, peak ~20:00) between the
    base and peak levels; per-minute burstiness is added by the workload's
    sampling noise, not here.
    """
    if not 0.0 <= hour_of_day < 24.0:
        raise ValueError(f"hour out of range: {hour_of_day}")
    phase = math.cos((hour_of_day - 20.0) / 24.0 * 2 * math.pi)
    level = (phase + 1.0) / 2.0  # 0 at trough, 1 at peak
    return base_iops + (peak_iops - base_iops) * level


def weekly_modulation(day_of_week: int) -> float:
    """Mild weekday/weekend swing for Figure 3's week-long series."""
    if not 0 <= day_of_week < 7:
        raise ValueError(f"day out of range: {day_of_week}")
    return 1.0 if day_of_week < 5 else 0.85
