"""Trace-driven workloads: record I/O streams, replay them anywhere.

Production analyses (like the paper's Figures 3-6) run the *same*
workload across stack generations.  A :class:`TraceRecorder` captures an
I/O stream as portable records; :func:`replay` re-issues them, preserving
inter-arrival times, against any deployment.  Traces serialize to JSON
lines so they can be stored alongside experiment results.

This module is the seed of the scenario plane: `repro.scenario.trace`
builds the multi-stream, digest-keyed :class:`FleetTrace` container on
top of these single-stream records, and `repro.scenario.record` captures
whole deployments through the telemetry subscribe hooks.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, List, Optional, TextIO

from ..agent.base import IoRequest
from ..ebs.virtual_disk import VirtualDisk
from ..metrics.stats import LatencyStats
from ..sim.engine import Simulator


class TraceFormatError(ValueError):
    """A malformed trace file: carries the offending line number.

    One typed error for every parse-time failure (bad JSON, missing
    keys, invalid field values), so callers catch one exception class
    instead of the union of ``json.JSONDecodeError``/``TypeError``/
    ``ValueError`` the underlying decode can raise.
    """

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


@dataclass(frozen=True)
class IoRecord:
    """One recorded I/O: timing and shape, no payload."""

    at_ns: int
    kind: str
    offset_bytes: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"bad kind {self.kind!r}")
        if self.at_ns < 0 or self.size_bytes <= 0 or self.offset_bytes < 0:
            raise ValueError(f"invalid record: {self}")


class TraceRecorder:
    """Collects IoRecords; wrap a generator's issue path with record().

    ``epoch_ns`` fixes the recording's time zero explicitly.  The default
    (``None``) keeps the historical behaviour — latch on the first
    ``record()`` call — which is fine for a single recorder but makes two
    recorders on the same simulator disagree about time zero when their
    first I/Os differ.  Recorders that must compose (the scenario plane's
    multi-stream capture) pass the shared epoch explicitly.
    """

    def __init__(self, sim: Simulator, epoch_ns: Optional[int] = None):
        self.sim = sim
        self.records: List[IoRecord] = []
        if epoch_ns is not None and epoch_ns < 0:
            raise ValueError(f"epoch_ns cannot be negative: {epoch_ns}")
        self._t0: Optional[int] = epoch_ns

    @property
    def epoch_ns(self) -> Optional[int]:
        """The recording's time zero (None until the first record latches)."""
        return self._t0

    def record(self, kind: str, offset_bytes: int, size_bytes: int) -> None:
        if self._t0 is None:
            self._t0 = self.sim.now
        self.records.append(
            IoRecord(self.sim.now - self._t0, kind, offset_bytes, size_bytes)
        )

    def dump(self, fp: TextIO) -> int:
        for record in self.records:
            fp.write(json.dumps(asdict(record)) + "\n")
        return len(self.records)


def load_trace(fp: TextIO) -> List[IoRecord]:
    """Parse a JSON-lines trace, validating every record.

    Malformed lines raise :class:`TraceFormatError` naming the offending
    line number; no bare ``ValueError``/``json.JSONDecodeError`` leaks
    to callers.
    """
    records = []
    for line_no, line in enumerate(fp, 1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"not valid JSON: {exc}", line_no) from exc
        if not isinstance(payload, dict):
            raise TraceFormatError(
                f"expected a record object, got {type(payload).__name__}", line_no
            )
        try:
            records.append(IoRecord(**payload))
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(f"bad trace record: {exc}", line_no) from exc
    return records


class ReplayResult:
    def __init__(self) -> None:
        self.latency = LatencyStats("replay")
        self.issued = 0
        self.completed = 0
        self.failed = 0
        #: Total bytes scheduled for issue, after size scaling/clamping.
        self.issued_bytes = 0


def replay(
    sim: Simulator,
    vd: VirtualDisk,
    records: Iterable[IoRecord],
    time_scale: float = 1.0,
    size_scale: float = 1.0,
    on_each: Optional[Callable[[IoRequest], None]] = None,
    on_issue: Optional[Callable[[IoRequest], None]] = None,
) -> ReplayResult:
    """Schedule every record against ``vd`` with original inter-arrivals
    (scaled by ``time_scale``); caller runs the simulator afterwards.

    ``time_scale`` stretches inter-arrival gaps (0.5 = twice the arrival
    rate) and ``size_scale`` multiplies I/O sizes (re-aligned to 4KB, at
    least one block), so one captured trace sweeps a load envelope.
    ``on_issue`` observes each I/O the moment it is submitted (e.g. an
    ``IoHangMonitor.watch``); ``on_each`` observes completions.
    """
    if time_scale <= 0:
        raise ValueError(f"non-positive time scale: {time_scale}")
    if size_scale <= 0:
        raise ValueError(f"non-positive size scale: {size_scale}")
    result = ReplayResult()

    def finish(io: IoRequest) -> None:
        if io.trace is not None and io.trace.ok:
            result.completed += 1
            result.latency.record(io.trace.total_ns)
        else:
            result.failed += 1
        if on_each is not None:
            on_each(io)

    def issue(kind: str, offset: int, size: int) -> None:
        op = vd.read if kind == "read" else vd.write
        io = op(offset, size, finish)
        if on_issue is not None:
            on_issue(io)

    for record in records:
        size = record.size_bytes
        if size_scale != 1.0:
            size = max(4096, int(size * size_scale) // 4096 * 4096)
        size = min(size, vd.size_bytes)
        offset = min(record.offset_bytes, vd.size_bytes - size)
        offset -= offset % 4096
        result.issued += 1
        result.issued_bytes += size
        sim.schedule(int(record.at_ns * time_scale), issue, record.kind, offset, size)
    return result
