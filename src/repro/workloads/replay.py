"""Trace-driven workloads: record I/O streams, replay them anywhere.

Production analyses (like the paper's Figures 3-6) run the *same*
workload across stack generations.  A :class:`TraceRecorder` captures an
I/O stream as portable records; :func:`replay` re-issues them, preserving
inter-arrival times, against any deployment.  Traces serialize to JSON
lines so they can be stored alongside experiment results.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, List, Optional, TextIO

from ..agent.base import IoRequest
from ..ebs.virtual_disk import VirtualDisk
from ..metrics.stats import LatencyStats
from ..sim.engine import Simulator


@dataclass(frozen=True)
class IoRecord:
    """One recorded I/O: timing and shape, no payload."""

    at_ns: int
    kind: str
    offset_bytes: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"bad kind {self.kind!r}")
        if self.at_ns < 0 or self.size_bytes <= 0 or self.offset_bytes < 0:
            raise ValueError(f"invalid record: {self}")


class TraceRecorder:
    """Collects IoRecords; wrap a generator's issue path with record()."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.records: List[IoRecord] = []
        self._t0: Optional[int] = None

    def record(self, kind: str, offset_bytes: int, size_bytes: int) -> None:
        if self._t0 is None:
            self._t0 = self.sim.now
        self.records.append(
            IoRecord(self.sim.now - self._t0, kind, offset_bytes, size_bytes)
        )

    def dump(self, fp: TextIO) -> int:
        for record in self.records:
            fp.write(json.dumps(asdict(record)) + "\n")
        return len(self.records)


def load_trace(fp: TextIO) -> List[IoRecord]:
    """Parse a JSON-lines trace, validating every record."""
    records = []
    for line_no, line in enumerate(fp, 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(IoRecord(**json.loads(line)))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise ValueError(f"bad trace record at line {line_no}: {exc}") from exc
    return records


class ReplayResult:
    def __init__(self) -> None:
        self.latency = LatencyStats("replay")
        self.issued = 0
        self.completed = 0
        self.failed = 0


def replay(
    sim: Simulator,
    vd: VirtualDisk,
    records: Iterable[IoRecord],
    time_scale: float = 1.0,
    on_each: Optional[Callable[[IoRequest], None]] = None,
) -> ReplayResult:
    """Schedule every record against ``vd`` with original inter-arrivals
    (scaled by ``time_scale``); caller runs the simulator afterwards."""
    if time_scale <= 0:
        raise ValueError(f"non-positive time scale: {time_scale}")
    result = ReplayResult()

    def finish(io: IoRequest) -> None:
        if io.trace is not None and io.trace.ok:
            result.completed += 1
            result.latency.record(io.trace.total_ns)
        else:
            result.failed += 1
        if on_each is not None:
            on_each(io)

    for record in records:
        size = min(record.size_bytes, vd.size_bytes)
        offset = min(record.offset_bytes, vd.size_bytes - size)
        offset -= offset % 4096
        result.issued += 1
        if record.kind == "read":
            sim.schedule(int(record.at_ns * time_scale), vd.read, offset, size, finish)
        else:
            sim.schedule(int(record.at_ns * time_scale), vd.write, offset, size, finish)
    return result
