"""CLI surface of the rebuild subsystem: ``python -m repro rebuild``.

Runs one re-replication storm drill — fio foreground, one storage-node
kill, the planner/executor recovering the lost replicas as real BN
traffic under the chosen throttle policy — and prints either a human
summary or (``--json``) the full canonical-JSON artifact.  The artifact
is a pure function of the flags + seed, so CI runs the command twice and
compares bytes to pin determinism.

Exit status 2 means the storm did not fully recover inside the drill's
bound (stalled or still copying) — scripts gate on 0.
"""

from __future__ import annotations

import argparse
import sys

from ..ebs import STACKS
from ..lab.spec import (
    REBUILD_MODES,
    REBUILD_POLICIES,
    ExperimentSpec,
    RebuildSpec,
    WorkloadSpec,
    canonical_json,
)
from ..sim import MS

#: Exit status for "the rebuild did not complete" (distinct from argparse 2
#: usage errors only by context; kept at 2 to match failover/upgrade).
EXIT_INCOMPLETE = 2


def add_rebuild_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "rebuild",
        help="re-replication storm drill (exits 2 if recovery is incomplete)",
        description=(
            "Kill one storage node under live fio load and rebuild the "
            "lost replicas as real backend-network traffic, throttled by "
            "the chosen policy."
        ),
    )
    parser.add_argument("--stack", choices=STACKS, default="solar")
    parser.add_argument("--policy", choices=REBUILD_POLICIES, default="static")
    parser.add_argument("--mode", choices=REBUILD_MODES, default="unicast")
    parser.add_argument("--rate-gbps", type=float, default=8.0,
                        help="static cap / rate ceiling in Gbit/s (default 8)")
    parser.add_argument("--deadline-ms", type=int, default=60,
                        help="deadline policy's recovery target (default 60)")
    parser.add_argument("--target-p99-us", type=int, default=500,
                        help="reactive policy's foreground p99 target "
                             "(default 500)")
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--chunk-kb", type=int, default=256)
    parser.add_argument("--vd-mb", type=int, default=16,
                        help="virtual disk size in MB (default 16)")
    parser.add_argument("--runtime-ms", type=int, default=30,
                        help="foreground fio runtime in ms (default 30)")
    parser.add_argument("--fail-at-ms", type=int, default=5,
                        help="when the storage node dies (default 5)")
    parser.add_argument("--node-index", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="print the full canonical-JSON artifact")


def cmd_rebuild(args: argparse.Namespace) -> int:
    from .drill import execute_rebuild_point

    spec = ExperimentSpec(
        name=f"cli-rebuild/{args.stack}/{args.policy}/{args.mode}",
        workload=WorkloadSpec(mode="fio", runtime_ns=args.runtime_ms * MS),
        seeds=(args.seed,),
        vd_size_mb=args.vd_mb,
        rebuild=RebuildSpec(
            policy=args.policy,
            mode=args.mode,
            rate_gbps=args.rate_gbps,
            deadline_ms=args.deadline_ms,
            target_p99_us=args.target_p99_us,
            replicas=args.replicas,
            chunk_kb=args.chunk_kb,
            fail_at_ns=args.fail_at_ms * MS,
            node_index=args.node_index,
        ),
    )
    spec = spec_with_stack(spec, args.stack)
    artifact = execute_rebuild_point(spec, args.seed)
    rb = artifact["rebuild"]
    if args.json:
        print(canonical_json(artifact).decode().rstrip("\n"))
    else:
        fg = rb["foreground"]
        recovery = rb["recovery_ns"]
        print(f"{args.stack} {args.policy}/{args.mode}: victim {rb['victim']}, "
              f"{rb['bytes_rebuilt']} bytes over {rb['chunks_copied']} chunks")
        print(f"  detected {fmt_ms(rb['detected_ns'])} after t0, recovery "
              f"{fmt_ms(recovery)}, ledger {rb['ledger']}")
        print(f"  foreground p99 {fmt_us(fg['p99_ns'])} overall, "
              f"{fmt_us(fg['p99_during_storm_ns'])} during the storm "
              f"({fg['samples_during_storm']} samples)")
        if not rb["complete"]:
            print("  rebuild INCOMPLETE", file=sys.stderr)
    return 0 if rb["complete"] else EXIT_INCOMPLETE


def spec_with_stack(spec: ExperimentSpec, stack: str) -> ExperimentSpec:
    import dataclasses

    return dataclasses.replace(
        spec, deployment=dataclasses.replace(spec.deployment, stack=stack)
    )


def fmt_ms(ns) -> str:
    return "n/a" if ns is None else f"{ns / MS:.2f}ms"


def fmt_us(ns) -> str:
    return "n/a" if ns is None else f"{ns / 1000:.1f}us"
