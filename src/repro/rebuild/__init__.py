"""repro.rebuild: re-replication storms as real backend-network traffic.

The control plane used to "recover" instantly — ``SegmentTable.evacuate``
rewired memberships and Table 2's clocks stopped at the metadata push.
This package models what the paper's recovery numbers actually cost: the
lost replicas' bytes move through the same BN/chunk-server/SSD resources
that serve foreground I/O, under a pluggable throttle policy, optionally
swarming from every surviving replica at once.

* :mod:`~repro.rebuild.planner` — failure events to transfer schedules,
  plus the started/completed/requeued/stalled ledger;
* :mod:`~repro.rebuild.executor` — transfers as closed-loop chunk copies
  over :class:`~repro.storage.bn.BackendNetwork`;
* :mod:`~repro.rebuild.throttle` — static-cap, deadline-paced and
  foreground-latency-reactive policies;
* :mod:`~repro.rebuild.drill` — the packaged experiment behind
  ``python -m repro rebuild`` and ``RebuildSpec`` lab points.
"""

from .executor import RebuildExecutor
from .planner import REBUILD_STUCK, RebuildPlanner, RebuildRecord, RebuildTransfer
from .throttle import (
    REBUILD_POLICIES,
    DeadlinePolicy,
    ReactivePolicy,
    StaticCapPolicy,
    ThrottlePolicy,
    make_policy,
)

__all__ = [
    "REBUILD_POLICIES",
    "REBUILD_STUCK",
    "DeadlinePolicy",
    "ReactivePolicy",
    "RebuildExecutor",
    "RebuildPlanner",
    "RebuildRecord",
    "RebuildTransfer",
    "StaticCapPolicy",
    "ThrottlePolicy",
    "make_policy",
]
