"""Throttle policies: how fast a re-replication storm may move bytes.

The executor asks the active policy for a rate before issuing every chunk
(`repro.rebuild.executor` runs one global leaky bucket over that rate),
so policies see the storm's live progress and can pace it three ways:

* :class:`StaticCapPolicy` — a fixed aggregate bandwidth cap, the classic
  "rebuild at N Gbps, whatever happens to foreground" operator knob;
* :class:`DeadlinePolicy` — pace to finish by a target recovery deadline:
  rate = remaining bytes / remaining time, re-derived continuously, so
  early progress slows the storm down and late re-queues speed it up;
* :class:`ReactivePolicy` — AIMD backoff driven by the `repro.telemetry`
  fleet p99 sketch: additive increase while foreground latency is under
  the target, multiplicative decrease the moment a scrape window crosses
  it.  An idle window (no foreground I/O, sketch empty, p99 ``None``)
  reads as healthy — free bandwidth for the rebuild.

All state is simulated-time only; a policy is a pure function of the
scrape/grant history, which keeps rebuild artifacts byte-identical
across ``REPRO_JOBS`` values.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..sim.events import MS, US

REBUILD_POLICIES = ("static", "deadline", "reactive")

#: Grant-rate floor: keeps the leaky bucket's inter-chunk gap finite even
#: if a policy backs off to (or is configured with) a pathological rate.
MIN_RATE_BPS = 1e6


class ThrottlePolicy:
    """Interface the executor paces against."""

    name = "base"

    def on_plan(self, now_ns: int, added_bytes: int) -> None:
        """A planner added ``added_bytes`` of copy work at ``now_ns``."""

    def rate_bps(self, now_ns: int, remaining_bytes: int) -> float:
        """Aggregate rebuild rate (bits/s) to pace the next chunk at."""
        raise NotImplementedError

    def observe_window(self, p99_ns: Optional[float]) -> None:
        """One telemetry scrape window's foreground p99 (``None`` = idle)."""

    def describe(self) -> Dict[str, Any]:
        """JSON-scalar self-description for artifacts."""
        return {"policy": self.name}


class StaticCapPolicy(ThrottlePolicy):
    """Fixed aggregate bandwidth cap."""

    name = "static"

    def __init__(self, rate_bps: float = 8e9):
        if rate_bps <= 0:
            raise ValueError(f"static cap must be positive: {rate_bps}")
        self._rate = float(rate_bps)

    def rate_bps(self, now_ns: int, remaining_bytes: int) -> float:
        return self._rate

    def describe(self) -> Dict[str, Any]:
        return {"policy": self.name, "rate_bps": self._rate}


class DeadlinePolicy(ThrottlePolicy):
    """Pace to land the last byte by ``first plan + deadline_ns``.

    The required rate is re-derived at every grant from the *live*
    remaining byte count, so the policy self-corrects: re-queued
    transfers raise the rate, early completion of other transfers lowers
    it.  When the deadline is shorter than the minimum transfer time the
    required rate exceeds ``max_rate_bps``; the policy clamps there and
    flags ``deadline_missed`` instead of dividing by a vanishing window.
    """

    name = "deadline"

    def __init__(
        self,
        deadline_ns: int = 60 * MS,
        min_rate_bps: float = 1e8,
        max_rate_bps: float = 64e9,
    ):
        if deadline_ns <= 0:
            raise ValueError(f"deadline must be positive: {deadline_ns}")
        if not 0 < min_rate_bps <= max_rate_bps:
            raise ValueError(
                f"need 0 < min <= max rate, got {min_rate_bps}..{max_rate_bps}"
            )
        self.deadline_ns = int(deadline_ns)
        self.min_rate_bps = float(min_rate_bps)
        self.max_rate_bps = float(max_rate_bps)
        #: Absolute target, armed by the first plan.
        self.deadline_at_ns: Optional[int] = None
        self.deadline_missed = False

    def on_plan(self, now_ns: int, added_bytes: int) -> None:
        if self.deadline_at_ns is None:
            self.deadline_at_ns = now_ns + self.deadline_ns

    def rate_bps(self, now_ns: int, remaining_bytes: int) -> float:
        if self.deadline_at_ns is None:
            return self.max_rate_bps
        left_ns = self.deadline_at_ns - now_ns
        if left_ns <= 0:
            if remaining_bytes > 0:
                self.deadline_missed = True
            return self.max_rate_bps
        need = remaining_bytes * 8 * 1e9 / left_ns
        if need > self.max_rate_bps:
            self.deadline_missed = True
            return self.max_rate_bps
        return max(need, self.min_rate_bps)

    def describe(self) -> Dict[str, Any]:
        return {
            "policy": self.name,
            "deadline_ns": self.deadline_ns,
            "deadline_at_ns": self.deadline_at_ns,
            "deadline_missed": self.deadline_missed,
            "min_rate_bps": self.min_rate_bps,
            "max_rate_bps": self.max_rate_bps,
        }


class ReactivePolicy(ThrottlePolicy):
    """AIMD on the foreground p99: back off when guests feel the storm.

    Wire ``observe_window`` to the telemetry scraper::

        plane.scraper.subscribe(
            lambda snap: policy.observe_window(snap.get("fleet.latency.p99"))
        )

    Windows with no completed foreground I/O scrape a ``None`` p99 (the
    window sketch is empty) — treated as "no one is complaining", i.e.
    additive increase, never a division or a stall.
    """

    name = "reactive"

    def __init__(
        self,
        target_p99_ns: float = 500_000,
        min_rate_bps: float = 5e8,
        max_rate_bps: float = 64e9,
        start_rate_bps: Optional[float] = None,
        increase_bps: float = 4e9,
        decrease_factor: float = 0.5,
    ):
        if target_p99_ns <= 0:
            raise ValueError(f"target p99 must be positive: {target_p99_ns}")
        if not 0 < min_rate_bps <= max_rate_bps:
            raise ValueError(
                f"need 0 < min <= max rate, got {min_rate_bps}..{max_rate_bps}"
            )
        if increase_bps <= 0 or not 0 < decrease_factor < 1:
            raise ValueError(
                f"invalid AIMD constants: +{increase_bps}bps x{decrease_factor}"
            )
        self.target_p99_ns = float(target_p99_ns)
        self.min_rate_bps = float(min_rate_bps)
        self.max_rate_bps = float(max_rate_bps)
        self.increase_bps = float(increase_bps)
        self.decrease_factor = float(decrease_factor)
        self._rate = float(
            min(max(start_rate_bps or max_rate_bps / 8, min_rate_bps), max_rate_bps)
        )
        self.windows_observed = 0
        self.backoffs = 0

    def observe_window(self, p99_ns: Optional[float]) -> None:
        self.windows_observed += 1
        if p99_ns is not None and p99_ns > self.target_p99_ns:
            self._rate = max(self._rate * self.decrease_factor, self.min_rate_bps)
            self.backoffs += 1
        else:
            self._rate = min(self._rate + self.increase_bps, self.max_rate_bps)

    def rate_bps(self, now_ns: int, remaining_bytes: int) -> float:
        return self._rate

    def describe(self) -> Dict[str, Any]:
        return {
            "policy": self.name,
            "target_p99_ns": self.target_p99_ns,
            "min_rate_bps": self.min_rate_bps,
            "max_rate_bps": self.max_rate_bps,
            "rate_bps": self._rate,
            "windows_observed": self.windows_observed,
            "backoffs": self.backoffs,
        }


def make_policy(
    name: str,
    rate_bps: float = 8e9,
    deadline_ns: int = 60 * MS,
    target_p99_ns: float = 500 * US,
) -> ThrottlePolicy:
    """Construct one of the three policies from scalar knobs.

    ``rate_bps`` is the static cap, and doubles as the deadline/reactive
    policies' ``max_rate_bps`` ceiling so one knob bounds every policy's
    worst-case foreground impact.
    """
    if name == "static":
        return StaticCapPolicy(rate_bps=rate_bps)
    if name == "deadline":
        return DeadlinePolicy(deadline_ns=deadline_ns, max_rate_bps=rate_bps)
    if name == "reactive":
        return ReactivePolicy(target_p99_ns=target_p99_ns, max_rate_bps=rate_bps)
    raise ValueError(f"unknown throttle policy {name!r}; one of {REBUILD_POLICIES}")
