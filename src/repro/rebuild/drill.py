"""Rebuild drills as lab experiment points.

:func:`execute_rebuild_point` is the re-replication twin of
:func:`repro.lab.runner.execute_point`: a pure function from
(:class:`~repro.lab.spec.ExperimentSpec` with a ``rebuild``, seed) to a
JSON-ready artifact.  The drill runs the spec's closed-loop fio workload
as the *foreground*, kills one storage node at ``fail_at_ns``, lets the
failover orchestrator hand the failure to a
:class:`~repro.rebuild.planner.RebuildPlanner`, and keeps simulating
until the storm drains (bounded).  The artifact carries the standard
aggregate keys plus a ``rebuild`` section: the recovery timeline, the
transfer ledger and the foreground p99 measured *during* the storm — one
(recovery-time, foreground-impact) observation per point, which is the
row `bench_rebuild_storm` plots.

Everything derives from simulated time only, so artifacts are
byte-identical across processes and across ``REPRO_JOBS`` values.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional, Tuple

from ..control.failover import FailoverOrchestrator, FailoverPolicy
from ..control.health import HEARTBEAT_LOSS, HealthMonitor, HealthPolicy
from ..ebs import EbsDeployment, VirtualDisk
from ..faults import IoHangMonitor
from ..lab.runner import DRAIN_NS
from ..lab.spec import SCHEMA_VERSION, ExperimentSpec
from ..net.failures import node_failure
from ..sim import MS, SECOND
from ..workloads import FioJob, FioSpec
from .executor import RebuildExecutor
from .planner import RebuildPlanner
from .throttle import make_policy

#: Detection cadence for the drill's health monitor: tight, so the
#: recovery clock is dominated by data movement, not heartbeat misses.
_HEARTBEAT_NS = 1 * MS
_MISS_THRESHOLD = 2
#: Control-plane decision + table-push latency before the plan runs.
_REROUTE_DELAY_NS = 2 * MS
#: Hard ceiling on how long the drill waits for the storm to drain.
_STORM_BOUND_NS = 5 * SECOND
_STORM_STEP_NS = 10 * MS


def _percentile(samples: List[int], q: float) -> Optional[int]:
    if not samples:
        return None
    ordered = sorted(samples)
    idx = max(0, min(len(ordered) - 1, math.ceil(q / 100 * len(ordered)) - 1))
    return ordered[idx]


def execute_rebuild_point(spec: ExperimentSpec, seed: int) -> Dict[str, Any]:
    """Run one re-replication storm drill point and return its artifact."""
    rb = spec.rebuild
    if rb is None:
        raise ValueError(f"spec {spec.name!r} has no rebuild plan")
    w = spec.workload

    dep = EbsDeployment(dataclasses.replace(spec.deployment, seed=seed))
    host = dep.compute_host_names()[0]
    vd = VirtualDisk(
        dep, "lab-vd0", host, spec.vd_size_mb * 1024 * 1024, replicas=rb.replicas
    )
    hang_monitor = IoHangMonitor(dep.sim, threshold_ns=spec.hang_threshold_ns)
    health = HealthMonitor(
        dep.sim,
        HealthPolicy(
            heartbeat_interval_ns=_HEARTBEAT_NS, miss_threshold=_MISS_THRESHOLD
        ),
    )
    policy = make_policy(
        rb.policy,
        rate_bps=rb.rate_gbps * 1e9,
        deadline_ns=rb.deadline_ms * MS,
        target_p99_ns=rb.target_p99_us * 1_000,
    )
    executor = RebuildExecutor(
        dep,
        policy,
        swarm=(rb.mode == "swarm"),
        chunk_bytes=rb.chunk_kb * 1024,
        max_active_transfers=rb.max_active_transfers,
    )
    planner = RebuildPlanner(dep, executor, monitor=health)
    orchestrator = FailoverOrchestrator(
        dep,
        health,
        FailoverPolicy(reroute_delay_ns=_REROUTE_DELAY_NS),
        planner=planner,
    )
    orchestrator.watch_storage()

    plane = None
    if spec.telemetry is not None or rb.policy == "reactive":
        # The reactive policy is *fed by* telemetry sketches — the plane is
        # part of its control loop, not optional equipment.
        from ..telemetry.plane import TelemetryPlane

        t = spec.telemetry
        plane = TelemetryPlane(
            dep,
            interval_ns=t.interval_ns if t is not None else 1 * MS,
            slo_ns=t.slo_ns if t is not None else 500_000,
            relative_accuracy=t.relative_accuracy if t is not None else 0.01,
        )
        plane.watch_vd(vd)
        plane.watch_rebuild(executor)
        if rb.policy == "reactive":
            plane.scraper.subscribe(
                lambda snap: policy.observe_window(snap.get("fleet.latency.p99"))
            )

    # Timestamped foreground completions, for the during-storm p99 window.
    fg_samples: List[Tuple[int, int]] = []

    def observe(io) -> None:
        if io.trace is not None and io.trace.ok:
            fg_samples.append((dep.sim.now, io.trace.total_ns))

    vd.subscribe(observe)

    # The fault: one storage node dies (all uplinks down -> heartbeats stop).
    victims = sorted(dep.storage_servers)
    victim = victims[rb.node_index % len(victims)]
    scenario = node_failure(victim)
    dep.sim.schedule_at(rb.fail_at_ns, scenario.apply, dep.topology)

    until = spec.until_ns
    if until is None:
        until = w.horizon_ns + DRAIN_NS + spec.hang_threshold_ns
    bound = max(until, rb.fail_at_ns) + _STORM_BOUND_NS
    health.start(until_ns=bound)
    if plane is not None:
        plane.start(until_ns=bound)

    job = FioJob(
        dep.sim,
        vd,
        FioSpec(
            block_sizes=w.block_sizes,
            iodepth=w.iodepth,
            read_fraction=w.read_fraction,
            runtime_ns=w.runtime_ns,
            pattern=w.pattern,
            name="rebuild-fg",
        ),
        on_issue=hang_monitor.watch,
    )
    job.start()
    dep.run(until_ns=until)
    # Let the storm drain past the workload horizon (bounded): the sweep
    # and scrape timers keep the heap non-empty, so run in fixed steps.
    while executor.busy and dep.sim.now < bound:
        dep.run(until_ns=min(bound, dep.sim.now + _STORM_STEP_NS))

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    heartbeat_incidents = [
        i for i in health.incidents_of(HEARTBEAT_LOSS) if i.node == victim
    ]
    detected_ns = (
        heartbeat_incidents[0].detected_ns if heartbeat_incidents else None
    )
    planned_ns = min(
        (r.planned_ns for r in planner.records), default=None
    )
    completed_ns = None
    if planner.records and all(
        r.done and r.completed_ns is not None for r in planner.records
    ):
        completed_ns = max(r.completed_ns for r in planner.records)
    complete = (
        completed_ns is not None
        and not executor.busy
        and planner.stalled_count == 0
    )
    storm_end = completed_ns if completed_ns is not None else dep.sim.now
    during = [
        lat for (t, lat) in fg_samples if rb.fail_at_ns <= t <= storm_end
    ]
    overall = [lat for (_t, lat) in fg_samples]

    ok_traces = dep.collector.completed()
    component_ns = {
        c: sum(t.components[c] for t in ok_traces) for c in ("sa", "fn", "bn", "ssd")
    }
    artifact: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "digest": spec.point_digest(seed),
        "name": spec.name,
        "stack": spec.deployment.stack,
        "seed": seed,
        "workload_mode": "rebuild",
        "issued": job.issues,
        "completed": job.completed,
        "failed": job.failed,
        "hangs": hang_monitor.hangs,
        "watched": hang_monitor.watched,
        "bytes_moved": job.bytes_moved,
        "duration_ns": job.result().duration_ns,
        "sim_ns": dep.sim.now,
        "events": dep.sim.events_processed,
        "latency_ns": list(job.latency.samples),
        "component_ns": component_ns,
        "component_count": len(ok_traces),
        "rebuild": {
            "policy": policy.describe(),
            "mode": rb.mode,
            "victim": victim,
            "chunk_kb": rb.chunk_kb,
            "replicas": rb.replicas,
            "fail_at_ns": rb.fail_at_ns,
            "detected_ns": detected_ns,
            "planned_ns": planned_ns,
            "completed_ns": completed_ns,
            "recovery_ns": planner.recovery_ns(),
            "complete": complete,
            "ledger": planner.audit(),
            "bytes_rebuilt": executor.bytes_done,
            "chunks_copied": executor.chunks_copied,
            "rebuild_reads": sum(
                cs.rebuild_reads_served for cs in dep.chunk_servers.values()
            ),
            "rebuild_writes": sum(
                cs.rebuild_writes_served for cs in dep.chunk_servers.values()
            ),
            "foreground": {
                "samples": len(overall),
                "samples_during_storm": len(during),
                "p50_ns": _percentile(overall, 50),
                "p99_ns": _percentile(overall, 99),
                "p99_during_storm_ns": _percentile(during, 99),
                "max_during_storm_ns": max(during) if during else None,
            },
        },
    }
    if spec.telemetry is not None and plane is not None:
        artifact["telemetry"] = plane.summary()
    return artifact
