"""Rebuild planner: failover events in, transfer schedules out.

The planner sits between the control plane and the data plane.  When the
:class:`~repro.control.failover.FailoverOrchestrator` hands it a node
failure it asks :meth:`SegmentTable.begin_rebuild` which segments lost a
copy, turns each resulting :class:`~repro.storage.segment_table.RebuildItem`
into a :class:`RebuildTransfer`, and feeds the executor.  It also keeps
the storm's ledger — the chaos invariant "every started rebuild either
completes or is re-planned" is checked directly against :meth:`audit`.

Unrecoverable segments (zero surviving data holders) do not hang: the
transfer is parked as *stalled* and a typed :data:`REBUILD_STUCK` incident
is declared on the health monitor.  When nodes rejoin the fleet the
orchestrator calls :meth:`on_node_recovered`, which retries stalled
transfers against any live *data holder* — including a rejoined dead node,
whose chunk store survived the outage (the same persistence the chaos
durability invariant relies on).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..profiles import BLOCK_SIZE, bytes_time_ns
from ..storage.segment_table import RebuildItem
from .executor import RebuildExecutor

#: Incident kind for "this segment currently has no live source to copy
#: from" — surfaced instead of letting the rebuild hang silently.
REBUILD_STUCK = "rebuild-unrecoverable"


def spillover_schedule(
    bytes_total: int, chunk_bytes: int, rate_gbps: float, start_ns: int = 0
) -> List[Tuple[int, int]]:
    """Paced ``(at_ns, size_bytes)`` chunk schedule for rebuild traffic
    that lands on a *remote* deployment.

    When a node failure's re-replication fans out across the FN fabric
    (`repro.dist` cross-shard routing), the receiving shard does not run
    this planner — it only sees the traffic.  This helper is the shape
    of that traffic: the same leaky-bucket pacing the
    :class:`~repro.rebuild.executor.RebuildExecutor` applies locally,
    reduced to a deterministic issue schedule the remote deployment can
    inject as real BN I/O.  Chunks are issued back-to-back at the wire
    time of ``chunk_bytes`` at ``rate_gbps``, with a short final chunk
    for the remainder.
    """
    if bytes_total <= 0:
        raise ValueError(f"bytes_total must be positive: {bytes_total}")
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive: {chunk_bytes}")
    if rate_gbps <= 0:
        raise ValueError(f"rate_gbps must be positive: {rate_gbps}")
    gap_ns = bytes_time_ns(chunk_bytes, rate_gbps)
    schedule: List[Tuple[int, int]] = []
    offset = 0
    at_ns = int(start_ns)
    while offset < bytes_total:
        size = min(chunk_bytes, bytes_total - offset)
        schedule.append((at_ns, size))
        offset += size
        at_ns += gap_ns
    return schedule


@dataclass(frozen=True)
class RebuildTransfer:
    """One scheduled copy: fill ``destination`` from ``sources``."""

    transfer_id: int
    vd_id: str
    segment_id: str
    start_lba: int
    num_blocks: int
    destination: str
    sources: Tuple[str, ...]
    planned_ns: int
    #: Transfer id this one replaces (its destination died mid-copy).
    requeue_of: Optional[int] = None

    @property
    def bytes_total(self) -> int:
        return self.num_blocks * BLOCK_SIZE


@dataclass
class RebuildRecord:
    """One node failure's rebuild plan and its completion timeline."""

    node: str
    planned_ns: int
    transfers: int
    bytes_total: int
    completed_ns: Optional[int] = None
    #: Transfer ids still owed to this record (re-queues swap ids in).
    pending_ids: Set[int] = field(default_factory=set)

    @property
    def done(self) -> bool:
        return not self.pending_ids


class RebuildPlanner:
    """Plans, launches, re-queues and accounts for rebuild transfers."""

    def __init__(
        self,
        deployment,
        executor: RebuildExecutor,
        monitor=None,
        node_prefix: str = "",
    ):
        self.deployment = deployment
        self.sim = deployment.sim
        self.executor = executor
        #: Optional :class:`~repro.control.health.HealthMonitor` (duck
        #: typed — only ``declare``/``resolve`` are used) for the
        #: :data:`REBUILD_STUCK` incidents.
        self.monitor = monitor
        self.node_prefix = node_prefix
        executor.on_done = self._on_transfer_done
        executor.on_requeue = self._on_transfer_requeued
        executor.on_stalled = self._on_transfer_stalled
        self.records: List[RebuildRecord] = []
        self._next_id = 1
        self._record_of: Dict[int, RebuildRecord] = {}
        #: (segment_id, destination) -> parked transfer with no live source.
        self._stalled: Dict[Tuple[str, str], RebuildTransfer] = {}
        self._stall_incidents: Dict[Tuple[str, str], object] = {}
        #: segment_id -> nodes known to hold the segment's bytes (original
        #: members, plus destinations that completed their copy).  A dead
        #: holder's chunk store persists, so it re-qualifies on rejoin.
        self._holders: Dict[str, Set[str]] = {}
        self.started = 0
        self.completed = 0
        self.requeued = 0

    # ------------------------------------------------------------------
    # Control-plane entry points (called by FailoverOrchestrator)
    # ------------------------------------------------------------------
    def on_node_failure(self, node: str, healthy: Sequence[str]) -> Dict[str, int]:
        """Plan the rebuild for ``node``'s death.  Returns the same
        ``{vd_id: segments_changed}`` map ``SegmentTable.evacuate`` would,
        so the orchestrator's recovery records are comparable."""
        # A stalled transfer whose destination just died is superseded by
        # the re-planned item begin_rebuild is about to emit.
        for key in sorted(self._stalled):
            if key[1] == node:
                transfer = self._stalled.pop(key)
                self.requeued += 1
                self._detach_record(transfer.transfer_id)
                self._resolve_stall(key)
        # Reclaim in-flight work that streamed to or from the dead node.
        self.executor.handle_node_failure(node, set(healthy))
        changed, items = self.deployment.segment_table.begin_rebuild(
            node, sorted(healthy)
        )
        if not changed:
            return changed
        record = RebuildRecord(
            node=node,
            planned_ns=self.sim.now,
            transfers=len(items),
            bytes_total=sum(item.bytes_total for item in items),
        )
        self.records.append(record)
        for item in items:
            self._note_holders(item, node)
            self._launch(item, record)
        if record.done:
            record.completed_ns = self.sim.now  # metadata-only failure
        return changed

    def on_node_recovered(self, node: str) -> int:
        """A node rejoined: retry every stalled transfer that now has a
        live data holder to copy from.  Returns the retry count."""
        retried = 0
        for key in sorted(self._stalled):
            transfer = self._stalled[key]
            sources = self._live_holders(transfer.segment_id, transfer.destination)
            if not sources:
                continue
            del self._stalled[key]
            self._resolve_stall(key)
            # Same transfer id: the record's obligation carries over.
            revived = dataclasses.replace(
                transfer, sources=sources, planned_ns=self.sim.now
            )
            self.executor.start(revived)
            retried += 1
        return retried

    # ------------------------------------------------------------------
    # Planning internals
    # ------------------------------------------------------------------
    def _note_holders(self, item: RebuildItem, dead_node: str) -> None:
        holders = self._holders.setdefault(item.segment_id, set())
        holders.update(item.sources)
        # The dead node's store keeps the bytes unless it was itself a
        # mid-copy destination (partial data — never a valid source).
        if not item.requeued:
            holders.add(dead_node)

    def _live_holders(self, segment_id: str, destination: str) -> Tuple[str, ...]:
        table = self.deployment.segment_table
        pending = table.pending_destinations(segment_id)
        out = []
        for holder in sorted(self._holders.get(segment_id, ())):
            if holder == destination or holder in pending:
                continue
            if holder in table.evacuated or not self._alive(holder):
                continue
            out.append(holder)
        return tuple(out)

    def _alive(self, name: str) -> bool:
        host = self.deployment.topology.hosts.get(name)
        if host is None:
            return False
        return any(ch.up for ch in host.uplinks)

    def _launch(self, item: RebuildItem, record: RebuildRecord) -> None:
        transfer = RebuildTransfer(
            transfer_id=self._next_id,
            vd_id=item.vd_id,
            segment_id=item.segment_id,
            start_lba=item.start_lba,
            num_blocks=item.num_blocks,
            destination=item.destination,
            sources=item.sources,
            planned_ns=self.sim.now,
        )
        self._next_id += 1
        self.started += 1
        record.pending_ids.add(transfer.transfer_id)
        self._record_of[transfer.transfer_id] = record
        if transfer.sources:
            self.executor.start(transfer)
        else:
            self._stall(transfer)

    def _stall(self, transfer: RebuildTransfer) -> None:
        key = (transfer.segment_id, transfer.destination)
        self._stalled[key] = transfer
        if self.monitor is not None and key not in self._stall_incidents:
            self._stall_incidents[key] = self.monitor.declare(
                REBUILD_STUCK,
                f"{self.node_prefix}{transfer.destination}",
                detail=(
                    f"segment {transfer.segment_id} has no live source "
                    f"({transfer.bytes_total} bytes unrecovered)"
                ),
            )

    def _resolve_stall(self, key: Tuple[str, str]) -> None:
        incident = self._stall_incidents.pop(key, None)
        if incident is not None and self.monitor is not None:
            self.monitor.resolve(incident)

    # ------------------------------------------------------------------
    # Executor callbacks
    # ------------------------------------------------------------------
    def _on_transfer_done(self, transfer: RebuildTransfer) -> None:
        self.completed += 1
        self.deployment.segment_table.complete_rebuild(
            transfer.segment_id, transfer.destination
        )
        self._holders.setdefault(transfer.segment_id, set()).add(
            transfer.destination
        )
        record = self._record_of.pop(transfer.transfer_id, None)
        if record is not None:
            record.pending_ids.discard(transfer.transfer_id)
            if record.done and record.completed_ns is None:
                record.completed_ns = self.sim.now
        # The destination now serves reads like any replica; SOLAR-style
        # cached maps must observe the membership (cheap re-push).
        self.deployment.refresh_vd(transfer.vd_id)

    def _on_transfer_requeued(self, transfer: RebuildTransfer) -> None:
        """Destination died mid-copy; ``begin_rebuild`` for that death will
        emit a ``requeued=True`` item that re-plans this work (the
        replacement transfer is booked under the *new* failure's record,
        so the old record's obligation moves with it)."""
        self.requeued += 1
        self._detach_record(transfer.transfer_id)

    def _detach_record(self, transfer_id: int) -> None:
        record = self._record_of.pop(transfer_id, None)
        if record is not None:
            record.pending_ids.discard(transfer_id)
            if record.done and record.completed_ns is None:
                record.completed_ns = self.sim.now

    def _on_transfer_stalled(self, transfer: RebuildTransfer) -> None:
        self._stall(transfer)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def stalled_count(self) -> int:
        return len(self._stalled)

    @property
    def busy(self) -> bool:
        return self.executor.busy or bool(self._stalled)

    def audit(self) -> Dict[str, int]:
        """The storm ledger.  Invariant (checked by `repro.chaos`):
        ``started == completed + requeued + active + stalled``."""
        return {
            "started": self.started,
            "completed": self.completed,
            "requeued": self.requeued,
            "active": self.executor.active_count + self.executor.queued_count,
            "stalled": len(self._stalled),
        }

    def recovery_ns(self) -> Optional[int]:
        """Plan-to-last-byte duration across all completed records, or
        ``None`` while any record is still owed transfers."""
        if not self.records:
            return None
        if any(not record.done or record.completed_ns is None
               for record in self.records):
            return None
        start = min(record.planned_ns for record in self.records)
        end = max(record.completed_ns for record in self.records)
        return end - start
