"""Rebuild executor: re-replication as real traffic on the BN.

Each :class:`~repro.rebuild.planner.RebuildTransfer` is pumped as a
closed-loop stream of chunk-sized copies: ``rebuild_read`` on a surviving
replica's chunk server, then ``rebuild_write`` on the new replica, both as
ordinary :meth:`BackendNetwork.call` RPCs that charge the same CPU cores,
SSD channels and fabric wire time as foreground I/O.  Recovery therefore
*contends* — the whole point of the subsystem (ROADMAP item 4; the paper's
Table 2 clocks assume this traffic exists).

Pacing is one global leaky bucket over the active
:class:`~repro.rebuild.throttle.ThrottlePolicy`'s rate: before each chunk
is issued the executor asks the policy for the current aggregate rate and
books the chunk's serialization gap, so all concurrent transfers share
one budget regardless of policy.

Swarm mode (``swarm=True``) runs one closed loop per surviving source —
all replicas of a segment seed concurrently, BitTorrent-style, pulling
disjoint chunks from a shared work queue.  Unicast keeps a single stream
and holds the remaining sources as failover reserves.

Failure handling is the part the satellite regression test exercises:
``handle_node_failure`` cancels transfers whose *destination* died (the
planner re-queues them onto a fresh destination via
``SegmentTable.begin_rebuild``) and reclaims in-flight chunks from dead
*sources*, promoting a reserve source in unicast or simply narrowing the
swarm.  A transfer left with no sources stalls and is handed back to the
planner, which surfaces a typed incident instead of hanging.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from ..profiles import BLOCK_SIZE
from ..storage.chunk_server import ChunkReply, ChunkRequest
from .throttle import MIN_RATE_BPS, ThrottlePolicy

#: Wire framing charged per rebuild RPC on top of the payload.
_RPC_HEADER_BYTES = 128


class _TransferState:
    """Book-keeping for one admitted transfer."""

    def __init__(self, transfer, chunk_bytes: int, swarm: bool):
        self.transfer = transfer
        #: Bumped to invalidate every outstanding callback on cancel.
        self.gen = 0
        blocks_per_chunk = chunk_bytes // BLOCK_SIZE
        self.chunks: List = []
        lba = transfer.start_lba
        end = transfer.start_lba + transfer.num_blocks
        while lba < end:
            blocks = min(blocks_per_chunk, end - lba)
            self.chunks.append((lba, blocks * BLOCK_SIZE))
            lba += blocks
        #: Chunk indices not yet claimed by a stream.
        self.pending: Deque[int] = deque(range(len(self.chunks)))
        #: chunk index -> source currently copying it.
        self.inflight: Dict[int, str] = {}
        if swarm:
            self.streams: List[str] = list(transfer.sources)
            self.reserve: List[str] = []
        else:
            self.streams = [transfer.sources[0]]
            self.reserve = list(transfer.sources[1:])
        #: Streams parked because ``pending`` drained while peers copy.
        self.idle: Set[str] = set()
        self.done_bytes = 0

    @property
    def finished(self) -> bool:
        return not self.pending and not self.inflight


class RebuildExecutor:
    """Runs planned transfers as throttled BN traffic."""

    def __init__(
        self,
        deployment,
        policy: ThrottlePolicy,
        swarm: bool = False,
        chunk_bytes: int = 256 * 1024,
        max_active_transfers: int = 4,
    ):
        if chunk_bytes <= 0 or chunk_bytes % BLOCK_SIZE:
            raise ValueError(
                f"chunk_bytes must be a positive multiple of {BLOCK_SIZE}"
            )
        if max_active_transfers < 1:
            raise ValueError(f"need >= 1 active transfer: {max_active_transfers}")
        self.deployment = deployment
        self.sim = deployment.sim
        self.bn = deployment.bn
        self.policy = policy
        self.swarm = swarm
        self.chunk_bytes = chunk_bytes
        self.max_active_transfers = max_active_transfers
        #: Planner hooks: transfer finished / must be re-planned / has no
        #: usable sources left.  Set by :class:`RebuildPlanner`.
        self.on_done: Optional[Callable] = None
        self.on_requeue: Optional[Callable] = None
        self.on_stalled: Optional[Callable] = None
        self._queue: Deque = deque()
        self._active: Dict[int, _TransferState] = {}
        #: Leaky bucket: simulated instant the next chunk grant frees up.
        self._next_free = 0
        self.bytes_planned = 0
        self.bytes_done = 0
        self.transfers_done = 0
        self.chunks_copied = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def start(self, transfer) -> None:
        """Accept one planned transfer (FIFO admission, bounded overlap)."""
        if not transfer.sources:
            raise ValueError(f"transfer {transfer.transfer_id} has no sources")
        self.bytes_planned += transfer.bytes_total
        self.policy.on_plan(self.sim.now, transfer.bytes_total)
        self._queue.append(transfer)
        self._admit()

    def _admit(self) -> None:
        while self._queue and len(self._active) < self.max_active_transfers:
            transfer = self._queue.popleft()
            state = _TransferState(transfer, self.chunk_bytes, self.swarm)
            self._active[transfer.transfer_id] = state
            for source in list(state.streams):
                self._next_chunk(state, source)

    # ------------------------------------------------------------------
    # The closed loop: grant -> rebuild_read -> rebuild_write -> repeat
    # ------------------------------------------------------------------
    def _grant(self, nbytes: int) -> int:
        """Book ``nbytes`` against the shared throttle; returns issue time."""
        now = self.sim.now
        remaining = max(self.bytes_planned - self.bytes_done, nbytes)
        rate = max(self.policy.rate_bps(now, remaining), MIN_RATE_BPS)
        gap = int(nbytes * 8 * 1e9 / rate)
        at = max(now, self._next_free)
        self._next_free = at + gap
        return at

    def _next_chunk(self, state: _TransferState, source: str) -> None:
        if not state.pending:
            state.idle.add(source)
            return
        chunk = state.pending.popleft()
        state.inflight[chunk] = source
        _lba, size = state.chunks[chunk]
        at = self._grant(size)
        self.sim.schedule_at(at, self._issue_read, state, source, chunk, state.gen)

    def _valid(self, state: _TransferState, source: str, chunk: int, gen: int) -> bool:
        return (
            state.transfer.transfer_id in self._active
            and state.gen == gen
            and state.inflight.get(chunk) == source
        )

    def _issue_read(
        self, state: _TransferState, source: str, chunk: int, gen: int
    ) -> None:
        if not self._valid(state, source, chunk, gen):
            return
        transfer = state.transfer
        lba, size = state.chunks[chunk]
        request = ChunkRequest(
            "rebuild_read", transfer.segment_id, transfer.vd_id, lba, size
        )
        self.bn.call(
            self.deployment.chunk_servers[source].handle,
            request,
            _RPC_HEADER_BYTES,
            lambda reply: self._on_read(state, source, chunk, gen, reply),
        )

    def _on_read(
        self, state: _TransferState, source: str, chunk: int, gen: int,
        reply: ChunkReply,
    ) -> None:
        if not self._valid(state, source, chunk, gen):
            return  # transfer cancelled or chunk reclaimed mid-flight
        transfer = state.transfer
        lba, size = state.chunks[chunk]
        request = ChunkRequest(
            "rebuild_write", transfer.segment_id, transfer.vd_id, lba, size,
            entries=reply.entries,
        )
        self.bn.call(
            self.deployment.chunk_servers[transfer.destination].handle,
            request,
            size + _RPC_HEADER_BYTES,
            lambda ack: self._on_write_ack(state, source, chunk, gen, ack),
        )

    def _on_write_ack(
        self, state: _TransferState, source: str, chunk: int, gen: int,
        ack: ChunkReply,
    ) -> None:
        if not self._valid(state, source, chunk, gen):
            return
        del state.inflight[chunk]
        _lba, size = state.chunks[chunk]
        state.done_bytes += size
        self.bytes_done += size
        self.chunks_copied += 1
        if state.finished:
            self._finish(state)
        else:
            self._next_chunk(state, source)

    def _finish(self, state: _TransferState) -> None:
        del self._active[state.transfer.transfer_id]
        self.transfers_done += 1
        if self.on_done is not None:
            self.on_done(state.transfer)
        self._admit()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def handle_node_failure(self, node: str, alive: Optional[Set[str]] = None) -> None:
        """React to ``node`` dying: cancel transfers writing *to* it (the
        planner re-queues them onto a fresh destination) and reclaim work
        streaming *from* it (promote a reserve / narrow the swarm; stall
        the transfer if no source remains)."""
        # Queued (not yet admitted) transfers first.
        kept: Deque = deque()
        while self._queue:
            transfer = self._queue.popleft()
            if transfer.destination == node:
                self._unplan(transfer.bytes_total)
                if self.on_requeue is not None:
                    self.on_requeue(transfer)
                continue
            if node in transfer.sources:
                transfer = dataclasses.replace(
                    transfer,
                    sources=tuple(s for s in transfer.sources if s != node),
                )
                if not transfer.sources:
                    self._unplan(transfer.bytes_total)
                    if self.on_stalled is not None:
                        self.on_stalled(transfer)
                    continue
            kept.append(transfer)
        self._queue = kept
        # Active transfers.
        for transfer_id in sorted(self._active):
            state = self._active.get(transfer_id)
            if state is None:
                continue
            if state.transfer.destination == node:
                self._cancel(state)
            elif node in state.streams or node in state.reserve:
                self._drop_source(state, node)
        self._admit()

    def _unplan(self, undone_bytes: int) -> None:
        """A transfer leaves the executor unfinished; its undone bytes are
        no longer this storm's work (a re-queued copy re-adds them)."""
        self.bytes_planned -= undone_bytes

    def _cancel(self, state: _TransferState) -> None:
        state.gen += 1
        state.inflight.clear()
        del self._active[state.transfer.transfer_id]
        self._unplan(state.transfer.bytes_total - state.done_bytes)
        if self.on_requeue is not None:
            self.on_requeue(state.transfer)

    def _drop_source(self, state: _TransferState, node: str) -> None:
        if node in state.reserve:
            state.reserve.remove(node)
        if node in state.streams:
            state.streams.remove(node)
            state.idle.discard(node)
            # Reclaim the dead stream's in-flight chunks for the others.
            reclaimed = sorted(
                chunk for chunk, src in state.inflight.items() if src == node
            )
            for chunk in reclaimed:
                del state.inflight[chunk]
                state.pending.appendleft(chunk)
            if not self.swarm and state.reserve:
                state.streams.append(state.reserve.pop(0))
                self._next_chunk(state, state.streams[-1])
        if not state.streams:
            state.gen += 1
            state.inflight.clear()
            del self._active[state.transfer.transfer_id]
            self._unplan(state.transfer.bytes_total - state.done_bytes)
            if self.on_stalled is not None:
                self.on_stalled(state.transfer)
            return
        # Returned chunks need pumps: wake every parked stream.
        for source in sorted(state.idle):
            state.idle.discard(source)
            self._next_chunk(state, source)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return bool(self._active or self._queue)

    def active_source_nodes(self) -> List[str]:
        """Nodes currently seeding at least one active transfer."""
        sources: Set[str] = set()
        for state in self._active.values():
            sources.update(state.streams)
        return sorted(sources)

    def current_rate_bps(self) -> float:
        remaining = max(self.bytes_planned - self.bytes_done, 0)
        return float(self.policy.rate_bps(self.sim.now, remaining))

    def attach_telemetry(self, plane) -> None:
        """Export progress gauges via ``plane.watch_rebuild``."""
        plane.watch_rebuild(self)
