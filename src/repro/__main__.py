"""Command-line interface: quick experiments without writing a script.

Usage::

    python -m repro info
    python -m repro latency --stack solar --kind write --size-kb 16
    python -m repro compare --size-kb 4
    python -m repro failover --stack luna --until-ms 2000
    python -m repro sweep --stacks solar,luna --seeds 0-3 --jobs 4
    python -m repro upgrade --from kernel --to luna --seed 42
    python -m repro monitor --stack luna --fault blackhole:spine:1.0@30

``failover`` and ``upgrade`` exit nonzero (2) when I/O hangs are detected,
so scripts can gate on them.  ``sweep`` and ``upgrade`` fan points across
worker processes and cache results content-addressed under
``benchmarks/out/lab``.
"""

from __future__ import annotations

import argparse
import sys

from .chaos.cli import add_chaos_parser, cmd_chaos
from .control.cli import add_upgrade_parser, cmd_upgrade
from .dist.cli import add_dist_parser, cmd_dist
from .ebs import DeploymentSpec, EbsDeployment, STACKS, VirtualDisk
from .faults import IoHangMonitor
from .lab.cli import add_sweep_parser, cmd_sweep
from .net.failures import switch_blackhole
from .rebuild.cli import add_rebuild_parser, cmd_rebuild
from .scenario.cli import add_scenario_parser, cmd_scenario
from .sim import MS, SECOND
from .telemetry.cli import add_monitor_parser, cmd_monitor

#: ``failover`` watches each I/O for this long before calling it hung
#: (Table 2's "unanswered >= 1s" yardstick).
HANG_THRESHOLD_NS = 1 * SECOND


def _deploy(stack: str, seed: int) -> tuple:
    dep = EbsDeployment(DeploymentSpec(stack=stack, seed=seed))
    vd = VirtualDisk(dep, "cli-vd", dep.compute_host_names()[0], 512 * 1024 * 1024)
    return dep, vd


def _one_io(dep, vd, kind: str, size_bytes: int):
    done = []
    getattr(vd, kind)(0, size_bytes, done.append)
    dep.run()
    return done[0].trace


def cmd_info(_args) -> int:
    from . import __version__

    print(f"repro {__version__} — 'From Luna to Solar' (SIGCOMM 2022) reproduction")
    print(f"stacks: {', '.join(STACKS)}")
    print("subcommands: info | latency | compare | failover | sweep | upgrade "
          "| monitor | chaos | rebuild | dist | scenario")
    return 0


def cmd_latency(args) -> int:
    dep, vd = _deploy(args.stack, args.seed)
    trace = _one_io(dep, vd, args.kind, args.size_kb * 1024)
    print(f"{args.stack} {args.kind} {args.size_kb}KB: "
          f"{trace.total_ns / 1000:.1f}us total")
    for component, ns in trace.components.items():
        print(f"  {component:4s} {ns / 1000:8.2f}us")
    return 0


def cmd_compare(args) -> int:
    print(f"{'stack':12s} {'write (us)':>11s} {'read (us)':>10s}")
    for stack in STACKS:
        dep, vd = _deploy(stack, args.seed)
        w = _one_io(dep, vd, "write", args.size_kb * 1024)
        r = _one_io(dep, vd, "read", args.size_kb * 1024)
        print(f"{stack:12s} {w.total_ns / 1000:11.1f} {r.total_ns / 1000:10.1f}")
    return 0


def cmd_failover(args) -> int:
    until_ns = int(args.until_ms * MS)
    # Stop issuing one hang threshold before the window closes, so every
    # watched I/O's hang check still fires inside the run.  The old
    # ``until_ns // 4`` heuristic silently watched zero I/Os on short
    # windows, reporting a vacuous "0 hung".
    issue_until_ns = until_ns - HANG_THRESHOLD_NS
    if issue_until_ns < 0:
        print(
            f"failover: --until-ms {args.until_ms:g} is shorter than the "
            f"{HANG_THRESHOLD_NS // MS}ms hang threshold; no I/O could be "
            "watched to completion. Use a longer window.",
            file=sys.stderr,
        )
        return 2
    dep, vd = _deploy(args.stack, args.seed)
    monitor = IoHangMonitor(dep.sim, threshold_ns=HANG_THRESHOLD_NS)
    scenario = switch_blackhole("spine", 0.5)
    dep.sim.schedule_at(10 * MS, scenario.apply, dep.topology)
    count = [0]

    def issue() -> None:
        if dep.sim.now > issue_until_ns:
            return
        io = vd.write((count[0] % 1000) * 4096, 4096, lambda io: None)
        monitor.watch(io)
        count[0] += 1
        dep.sim.schedule(2 * MS, issue)

    issue()
    dep.run(until_ns=until_ns)
    print(f"{args.stack}: {monitor.watched} I/Os under a 50% spine blackhole, "
          f"{monitor.hangs} hung >= 1s")
    # Scriptable contract: nonzero when the stack hung I/Os.
    return 2 if monitor.hangs else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("info", help="version and capabilities")

    p_lat = sub.add_parser("latency", help="one I/O's latency breakdown")
    p_lat.add_argument("--stack", choices=STACKS, default="solar")
    p_lat.add_argument("--kind", choices=("read", "write"), default="write")
    p_lat.add_argument("--size-kb", type=int, default=4)
    p_lat.add_argument("--seed", type=int, default=0)

    p_cmp = sub.add_parser("compare", help="all stacks side by side")
    p_cmp.add_argument("--size-kb", type=int, default=4)
    p_cmp.add_argument("--seed", type=int, default=0)

    p_fo = sub.add_parser("failover", help="blackhole drill on one stack "
                          "(exits 2 if I/Os hang)")
    p_fo.add_argument("--stack", choices=STACKS, default="solar")
    p_fo.add_argument("--seed", type=int, default=0)
    p_fo.add_argument("--until-ms", type=float, default=2000.0,
                      help="simulated run window in ms (default: 2000; must "
                           "exceed the 1000ms hang threshold — I/Os are "
                           "issued until one threshold before the end)")

    add_sweep_parser(sub)
    add_upgrade_parser(sub)
    add_monitor_parser(sub)
    add_chaos_parser(sub)
    add_rebuild_parser(sub)
    add_dist_parser(sub)
    add_scenario_parser(sub)

    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "latency": cmd_latency,
        "compare": cmd_compare,
        "failover": cmd_failover,
        "sweep": cmd_sweep,
        "upgrade": cmd_upgrade,
        "monitor": cmd_monitor,
        "chaos": cmd_chaos,
        "rebuild": cmd_rebuild,
        "dist": cmd_dist,
        "scenario": cmd_scenario,
        None: cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
