"""CPU core models.

A :class:`CpuCore` is a serial service resource: work items are executed
FIFO, each occupying the core for its cost.  Queueing on a saturated core
is what turns the software SA into the latency tail of Figure 6, and the
per-core packet budget is what Table 1's "consumed cores" column counts.

:class:`CpuComplex` groups cores with either hash-pinned dispatch (LUNA's
"lock-free and share-nothing thread arrangement", §3.2) or least-loaded
dispatch (the kernel stack's softirq steering approximation).
"""

from __future__ import annotations

import zlib
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional

from ..sim.engine import Simulator
from ..sim.events import Signal

_busy_until = attrgetter("busy_until")


class CpuCore:
    """A single core: serial FIFO execution with utilization accounting."""

    __slots__ = ("sim", "name", "ghz", "busy_until", "busy_ns_total", "jobs_run")

    def __init__(self, sim: Simulator, name: str, ghz: float = 2.1):
        self.sim = sim
        self.name = name
        self.ghz = ghz
        self.busy_until = 0
        self.busy_ns_total = 0
        self.jobs_run = 0

    def submit(
        self, cost_ns: int, callback: Optional[Callable[..., Any]] = None, *args: Any
    ) -> int:
        """Occupy the core for ``cost_ns``; fire ``callback`` at completion.

        Returns the absolute completion time so callers can also sequence
        on the result without a callback.
        """
        cost_ns = int(cost_ns)
        if cost_ns < 0:
            raise ValueError(f"negative CPU cost: {cost_ns}")
        start = max(self.sim.now, self.busy_until)
        done = start + cost_ns
        self.busy_until = done
        self.busy_ns_total += cost_ns
        self.jobs_run += 1
        if callback is not None:
            self.sim.schedule_at_fire(done, callback, *args)
        return done

    def submit_signal(self, cost_ns: int, name: str = "cpu-done") -> Signal:
        """Like :meth:`submit` but returns a Signal processes can wait on."""
        signal = Signal(name)
        self.submit(cost_ns, signal.fire, None)
        return signal

    @property
    def queue_delay_ns(self) -> int:
        """How long a job submitted right now would wait before starting."""
        return max(0, self.busy_until - self.sim.now)

    def utilization(self, window_ns: int) -> float:
        """Fraction of the last ``window_ns`` the core spent busy
        (approximate: assumes work was spread over the window)."""
        if window_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns_total / window_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CpuCore {self.name} qdelay={self.queue_delay_ns}ns>"


class CpuComplex:
    """A set of cores with pluggable dispatch."""

    def __init__(self, sim: Simulator, name: str, cores: int, ghz: float = 2.1):
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        self.sim = sim
        self.name = name
        self.cores: List[CpuCore] = [
            CpuCore(sim, f"{name}/c{i}", ghz) for i in range(cores)
        ]
        self._pin_cache: Dict[str, CpuCore] = {}

    def pinned(self, key: str) -> CpuCore:
        """Share-nothing dispatch: a stable key always lands on one core.

        Uses crc32 rather than builtin ``hash`` — string hashing is salted
        per process (PYTHONHASHSEED), which would make core collisions, and
        therefore simulated timings, vary between interpreter invocations.
        The mapping is memoized (it is hit once per chunk per connection).
        """
        core = self._pin_cache.get(key)
        if core is None:
            core = self.cores[zlib.crc32(key.encode()) % len(self.cores)]
            self._pin_cache[key] = core
        return core

    def least_loaded(self) -> CpuCore:
        """Pick the core that would start new work soonest."""
        return min(self.cores, key=_busy_until)

    def total_busy_ns(self) -> int:
        return sum(core.busy_ns_total for core in self.cores)

    def cores_consumed(self, window_ns: int) -> float:
        """Equivalent fully-busy cores over a window — Table 1's metric."""
        if window_ns <= 0:
            return 0.0
        return self.total_busy_ns() / window_ns

    def __len__(self) -> int:
        return len(self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CpuComplex {self.name} x{len(self.cores)}>"
