"""FPGA device model: resource budget, pipeline timing, and fault hooks.

Three aspects of the paper's FPGA reality are modelled:

* **resources** — the FPGA is shared with other hypervisor functions, so
  SOLAR's modules must fit a small LUT/BRAM slice (Table 3 totals 8.5% LUT
  and 18.2% BRAM).  Modules register their utilization here and
  over-subscription is a hard error at construction time.
* **timing** — the pipeline is line-rate with a fixed per-packet latency
  (§4.5: packet processing "at line-rate without buffering").
* **faults** — FPGAs are "error-prone due to random hardware failures
  (e.g., bit flipping)" (§4.4, Figure 11: 37% of corruption events).  A
  registered fault hook may mutate payload bytes or table results; the CRC
  aggregation defence (``repro.core.crc_agg``) is validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..sim.engine import Simulator

#: A fault hook takes (payload, context-name) and returns a possibly
#: corrupted payload.  ``None`` payloads pass through untouched.
FaultHook = Callable[[bytes, str], bytes]


@dataclass(frozen=True)
class FpgaModuleSpec:
    """Resource utilization of one pipeline module, in percent of device."""

    name: str
    lut_pct: float
    bram_pct: float

    def __post_init__(self) -> None:
        if self.lut_pct < 0 or self.bram_pct < 0:
            raise ValueError(f"negative resource use: {self}")


class FpgaResourceError(RuntimeError):
    """Raised when registered modules exceed the device's resource budget."""


class FpgaDevice:
    """A programmable accelerator with a resource budget and fault hooks."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        pipeline_latency_ns: int = 1_000,
        lut_budget_pct: float = 100.0,
        bram_budget_pct: float = 100.0,
    ):
        self.sim = sim
        self.name = name
        self.pipeline_latency_ns = pipeline_latency_ns
        self.lut_budget_pct = lut_budget_pct
        self.bram_budget_pct = bram_budget_pct
        self.modules: Dict[str, FpgaModuleSpec] = {}
        self.fault_hook: Optional[FaultHook] = None
        self.packets_processed = 0

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    def register_module(self, spec: FpgaModuleSpec) -> None:
        if spec.name in self.modules:
            raise FpgaResourceError(f"module {spec.name!r} registered twice")
        lut = self.lut_used_pct + spec.lut_pct
        bram = self.bram_used_pct + spec.bram_pct
        if lut > self.lut_budget_pct or bram > self.bram_budget_pct:
            raise FpgaResourceError(
                f"registering {spec.name!r} exceeds budget: "
                f"LUT {lut:.1f}/{self.lut_budget_pct}%, "
                f"BRAM {bram:.1f}/{self.bram_budget_pct}%"
            )
        self.modules[spec.name] = spec

    @property
    def lut_used_pct(self) -> float:
        return sum(m.lut_pct for m in self.modules.values())

    @property
    def bram_used_pct(self) -> float:
        return sum(m.bram_pct for m in self.modules.values())

    def resource_report(self) -> Dict[str, Dict[str, float]]:
        """Per-module + total LUT/BRAM utilization (the Table 3 rows)."""
        report = {
            name: {"lut_pct": spec.lut_pct, "bram_pct": spec.bram_pct}
            for name, spec in sorted(self.modules.items())
        }
        report["Total"] = {
            "lut_pct": round(self.lut_used_pct, 3),
            "bram_pct": round(self.bram_used_pct, 3),
        }
        return report

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def set_fault_hook(self, hook: Optional[FaultHook]) -> None:
        self.fault_hook = hook

    def pass_through(self, payload: Optional[bytes], context: str) -> Optional[bytes]:
        """Run a payload through the device, applying any fault hook."""
        self.packets_processed += 1
        if payload is None or self.fault_hook is None:
            return payload
        return self.fault_hook(payload, context)

    def process(
        self, callback: Callable[..., Any], *args: Any, extra_ns: int = 0
    ) -> None:
        """Complete a pipeline traversal after the fixed pipeline latency."""
        self.sim.schedule(self.pipeline_latency_ns + extra_ns, callback, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FpgaDevice {self.name} LUT {self.lut_used_pct:.1f}% "
            f"BRAM {self.bram_used_pct:.1f}%>"
        )
