"""PCIe interconnect model.

§4.2: ALI-DPU's internal PCIe is "far less than 100Gbps" while the NIC is
2x25GE, so a datapath that crosses it twice (LUNA and RDMA in Figure 10)
hits the "PCIe goodput bottleneck" line of Figure 14.  The model is a
serial bandwidth resource: transfers serialize at the configured rate and
pay a fixed per-transfer latency.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..profiles import bytes_time_ns
from ..sim.engine import Simulator
from ..sim.events import Signal


class PcieLink:
    """A shared serial bandwidth resource (both directions contend)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: float,
        per_transfer_latency_ns: int = 900,
    ):
        if gbps <= 0:
            raise ValueError(f"PCIe bandwidth must be positive: {gbps}")
        self.sim = sim
        self.name = name
        self.gbps = gbps
        self.per_transfer_latency_ns = per_transfer_latency_ns
        self.busy_until = 0
        self.bytes_moved = 0
        self.transfers = 0

    def transfer(
        self,
        size_bytes: int,
        callback: Optional[Callable[..., Any]] = None,
        *args: Any,
    ) -> int:
        """Move ``size_bytes`` across the link; returns completion time."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        start = max(self.sim.now, self.busy_until)
        done = start + bytes_time_ns(size_bytes, self.gbps) + self.per_transfer_latency_ns
        self.busy_until = done
        self.bytes_moved += size_bytes
        self.transfers += 1
        if callback is not None:
            self.sim.schedule_at(done, callback, *args)
        return done

    def transfer_signal(self, size_bytes: int, name: str = "pcie-done") -> Signal:
        signal = Signal(name)
        self.transfer(size_bytes, signal.fire, None)
        return signal

    @property
    def queue_delay_ns(self) -> int:
        return max(0, self.busy_until - self.sim.now)

    def goodput_gbps(self, window_ns: int) -> float:
        """Achieved goodput over a window, in Gbps."""
        if window_ns <= 0:
            return 0.0
        return self.bytes_moved * 8 / window_ns  # bytes*8 / ns == Gbps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PcieLink {self.name} {self.gbps}G qdelay={self.queue_delay_ns}ns>"
