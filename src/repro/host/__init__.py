"""Host substrate: CPU cores, PCIe, DMA, NVMe, FPGA and the ALI-DPU."""

from .cpu import CpuComplex, CpuCore
from .dma import DmaEngine
from .dpu import AliDpu
from .fpga import FpgaDevice, FpgaModuleSpec, FpgaResourceError
from .nvme import NvmeError, NvmeQueue
from .pcie import PcieLink
from .server import ComputeServer, StorageServer

__all__ = [
    "CpuCore",
    "CpuComplex",
    "PcieLink",
    "DmaEngine",
    "NvmeQueue",
    "NvmeError",
    "FpgaDevice",
    "FpgaModuleSpec",
    "FpgaResourceError",
    "AliDpu",
    "ComputeServer",
    "StorageServer",
]
