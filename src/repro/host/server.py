"""Server chassis models.

A server is an :class:`Endpoint` (its NIC ports, wired by the topology)
plus compute resources.  Two hosting modes exist for compute servers
(§4.1, Figure 9):

* ``"vm"`` — the hypervisor (including the SA) runs on the host CPU;
* ``"bare_metal"`` — the guest owns the host entirely; all infrastructure,
  including the SA, lives on the plugged-in ALI-DPU.
"""

from __future__ import annotations

from typing import Optional

from ..profiles import Profiles
from ..sim.engine import Simulator
from ..net.endpoint import Endpoint
from .cpu import CpuComplex
from .dpu import AliDpu
from .nvme import NvmeQueue

HOSTING_MODES = ("vm", "bare_metal")


class ComputeServer:
    """A compute server hosting guest workloads that issue EBS I/O."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        profiles: Profiles,
        hosting: str = "vm",
        host_cores: int = 16,
    ):
        if hosting not in HOSTING_MODES:
            raise ValueError(f"hosting must be one of {HOSTING_MODES}, got {hosting!r}")
        self.sim = sim
        self.endpoint = endpoint
        self.profiles = profiles
        self.hosting = hosting
        self.name = endpoint.name
        self.host_cpu = CpuComplex(sim, f"{self.name}/host-cpu", host_cores)
        self.dpu: Optional[AliDpu] = None
        if hosting == "bare_metal":
            self.dpu = AliDpu(
                sim,
                f"{self.name}/dpu",
                profiles.dpu,
                profiles.pcie,
                fpga_pipeline_ns=profiles.solar.fpga_pipeline_ns,
            )
        self.nvme = NvmeQueue(sim, f"{self.name}/nvme")

    @property
    def infra_cpu(self) -> CpuComplex:
        """The CPU complex that infrastructure code (stack + SA) runs on."""
        if self.dpu is not None:
            return self.dpu.cpu
        return self.host_cpu

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComputeServer {self.name} hosting={self.hosting}>"


class StorageServer:
    """A storage-cluster server (block server or chunk server chassis)."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: Endpoint,
        role: str,
        cores: int = 32,
    ):
        if role not in ("block", "chunk"):
            raise ValueError(f"role must be 'block' or 'chunk', got {role!r}")
        self.sim = sim
        self.endpoint = endpoint
        self.role = role
        self.name = endpoint.name
        self.cpu = CpuComplex(sim, f"{self.name}/cpu", cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StorageServer {self.name} role={self.role}>"
