"""NVMe command interface between the guest OS and the hypervisor/DPU.

Guests see EBS virtual disks as NVMe PCIe devices (§3.3: "VM views EBS as
a PCIe device"), so every I/O enters the SA as an NVMe command and is
completed by ringing a doorbell back to the guest (Figure 12/13).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.engine import Simulator


class NvmeError(RuntimeError):
    """Raised when the submission queue overflows (guest sees device busy)."""


class NvmeQueue:
    """A guest-visible NVMe submission/completion queue pair."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        submit_latency_ns: int = 1_500,
        doorbell_ns: int = 400,
        queue_depth: int = 1024,
    ):
        self.sim = sim
        self.name = name
        self.submit_latency_ns = submit_latency_ns
        self.doorbell_ns = doorbell_ns
        self.queue_depth = queue_depth
        self.inflight = 0
        self.submitted = 0
        self.completed = 0

    def submit(self, command: Any, handler: Callable[[Any], None]) -> None:
        """Guest posts a command; ``handler`` (the SA) receives it after the
        submission latency."""
        if self.inflight >= self.queue_depth:
            raise NvmeError(
                f"{self.name}: submission queue full ({self.queue_depth} inflight)"
            )
        self.inflight += 1
        self.submitted += 1
        self.sim.schedule(self.submit_latency_ns, handler, command)

    def complete(
        self, command: Any, callback: Optional[Callable[[Any], None]] = None
    ) -> None:
        """Device rings the completion doorbell back to the guest."""
        if self.inflight <= 0:
            raise NvmeError(f"{self.name}: completion without a submission")
        self.inflight -= 1
        self.completed += 1
        if callback is not None:
            self.sim.schedule(self.doorbell_ns, callback, command)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NvmeQueue {self.name} inflight={self.inflight}>"
