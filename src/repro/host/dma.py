"""DMA engine: moves data between guest memory and a device over PCIe.

§4.2: the DPU "provides a DMA engine that can read/write data directly
from/to the guest memory via PCIe".  SOLAR's FPGA pipeline uses this engine
to place READ blocks into guest memory (and fetch WRITE blocks) without
touching the DPU CPU (Figure 13).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.engine import Simulator
from .pcie import PcieLink


class DmaEngine:
    """A DMA engine bound to one PCIe link, with per-operation setup cost."""

    def __init__(self, sim: Simulator, name: str, pcie: PcieLink, setup_ns: int = 700):
        self.sim = sim
        self.name = name
        self.pcie = pcie
        self.setup_ns = setup_ns
        self.reads = 0
        self.writes = 0

    def read_from_guest(
        self, size_bytes: int, callback: Optional[Callable[..., Any]] = None, *args: Any
    ) -> int:
        """Fetch bytes from guest memory (used on the WRITE datapath)."""
        self.reads += 1
        return self._move(size_bytes, callback, *args)

    def write_to_guest(
        self, size_bytes: int, callback: Optional[Callable[..., Any]] = None, *args: Any
    ) -> int:
        """Place bytes into guest memory (used on the READ datapath)."""
        self.writes += 1
        return self._move(size_bytes, callback, *args)

    def _move(
        self, size_bytes: int, callback: Optional[Callable[..., Any]], *args: Any
    ) -> int:
        def after_setup() -> None:
            self.pcie.transfer(size_bytes, callback, *args)

        if callback is None:
            # Pure accounting path: charge setup + transfer synchronously.
            return self.pcie.transfer(size_bytes) + self.setup_ns
        self.sim.schedule(self.setup_ns, after_setup)
        # Best-effort completion estimate (actual completion fires callback).
        return self.sim.now + self.setup_ns + self.pcie.queue_delay_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DmaEngine {self.name} via {self.pcie.name}>"
