"""ALI-DPU: the bare-metal hosting card (§4.2, Figure 9b).

The DPU bundles:

* a small infrastructure CPU complex (6 cores on ALI-DPU);
* an FPGA programmable datapath;
* an **internal** PCIe interconnect between NIC/CPU/FPGA — the scarce
  resource ("far less than 100Gbps" against 2x25GE Ethernet) that LUNA and
  RDMA must cross twice per datum (Figure 10a/b) but SOLAR avoids
  (Figure 10c);
* a **host** PCIe connection carrying DMA to/from guest memory;
* the Ethernet ports (modelled by the server's :class:`Endpoint`).
"""

from __future__ import annotations

from ..profiles import DpuProfile, PcieProfile
from ..sim.engine import Simulator
from .cpu import CpuComplex
from .dma import DmaEngine
from .fpga import FpgaDevice
from .pcie import PcieLink


class AliDpu:
    """One DPU card plugged into a bare-metal compute server."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dpu_profile: DpuProfile,
        pcie_profile: PcieProfile,
        fpga_pipeline_ns: int = 1_000,
    ):
        self.sim = sim
        self.name = name
        self.profile = dpu_profile
        self.cpu = CpuComplex(sim, f"{name}/cpu", dpu_profile.cpu_cores, dpu_profile.cpu_ghz)
        self.fpga = FpgaDevice(sim, f"{name}/fpga", pipeline_latency_ns=fpga_pipeline_ns)
        self.internal_pcie = PcieLink(
            sim,
            f"{name}/pcie-internal",
            pcie_profile.dpu_internal_gbps,
            pcie_profile.per_transfer_latency_ns,
        )
        self.host_pcie = PcieLink(
            sim,
            f"{name}/pcie-host",
            pcie_profile.host_gbps,
            pcie_profile.per_transfer_latency_ns,
        )
        self.dma = DmaEngine(sim, f"{name}/dma", self.host_pcie, pcie_profile.dma_setup_ns)

    @property
    def line_rate_gbps(self) -> float:
        """Aggregate Ethernet capacity of the card."""
        return self.profile.ethernet_ports * self.profile.ethernet_gbps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AliDpu {self.name} {len(self.cpu)}c {self.line_rate_gbps:.0f}G>"
