"""repro — a reproduction of "From Luna to Solar: The Evolutions of the
Compute-to-Storage Networks in Alibaba Cloud" (SIGCOMM 2022).

The package simulates Alibaba Cloud's EBS datapath end to end —
guest NVMe command → storage agent → frontend network → block server →
backend network → chunk server SSD — under four frontend stacks:

* ``kernel`` — the legacy kernel TCP baseline;
* ``luna`` — the user-space TCP stack (§3);
* ``rdma`` — a RoCEv2 RC comparator (§3.1, Figures 14/15);
* ``solar`` — the storage-oriented UDP stack with full DPU offload (§4),
  the paper's primary contribution (:mod:`repro.core`).

Start with :mod:`repro.ebs` for whole-deployment experiments, or
:mod:`repro.core` for SOLAR itself.
"""

from .profiles import DEFAULT as DEFAULT_PROFILES
from .profiles import BLOCK_SIZE, Profiles

__version__ = "1.0.0"

__all__ = ["Profiles", "DEFAULT_PROFILES", "BLOCK_SIZE", "__version__"]
