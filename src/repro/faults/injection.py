"""Experiment-level fault orchestration and I/O-hang monitoring.

Table 2's metric is the "number of I/Os with no response in one second or
longer"; Figure 8's is "I/O hang" incidents (no response for a minute or
more) weighted by affected VMs.  The :class:`IoHangMonitor` watches
in-flight I/Os and counts threshold crossings, independent of whether the
I/O eventually completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..agent.base import IoRequest
from ..net.failures import FailureScenario
from ..net.topology import ClosTopology
from ..sim.engine import Simulator
from ..sim.events import SECOND


class IoHangMonitor:
    """Counts I/Os that stay unanswered past a threshold.

    ``on_hang`` (if given) receives each I/O the moment its threshold
    crossing is detected — this is the hang-signal feed the control
    plane's :class:`repro.control.health.HealthMonitor` subscribes to.
    """

    def __init__(
        self,
        sim: Simulator,
        threshold_ns: int = 1 * SECOND,
        on_hang: Optional[Callable[[IoRequest], None]] = None,
    ):
        self.sim = sim
        self.threshold_ns = threshold_ns
        self.on_hang = on_hang
        self.hangs = 0
        self.completed_after_hang = 0
        self._watched = 0

    def watch(self, io: IoRequest) -> None:
        """Arm the hang check for one I/O.  Call right after submission."""
        self._watched += 1
        self.sim.schedule(self.threshold_ns, self._check, io)

    def _check(self, io: IoRequest) -> None:
        trace = io.trace
        if trace is None or trace.complete_ns is None:
            self.hangs += 1
            io.__dict__["_hang_flagged"] = True
            if self.on_hang is not None:
                self.on_hang(io)
        elif trace.complete_ns > trace.submit_ns + self.threshold_ns:
            self.hangs += 1
            if self.on_hang is not None:
                self.on_hang(io)

    def note_completion(self, io: IoRequest) -> None:
        if io.__dict__.get("_hang_flagged"):
            self.completed_after_hang += 1

    @property
    def watched(self) -> int:
        return self._watched


@dataclass
class TimedFault:
    """Apply a failure scenario at a time, optionally revert later."""

    scenario: FailureScenario
    start_ns: int
    end_ns: Optional[int] = None

    def schedule(self, sim: Simulator, topology: ClosTopology) -> None:
        sim.schedule_at(self.start_ns, self.scenario.apply, topology)
        if self.end_ns is not None:
            if self.end_ns <= self.start_ns:
                raise ValueError("fault must end after it starts")
            sim.schedule_at(self.end_ns, self.scenario.revert, topology)


@dataclass
class IncidentOutcome:
    """Result record of one failure-scenario experiment run."""

    scenario_name: str
    stack: str
    ios_issued: int
    ios_hung: int
    hang_rate: float = field(init=False)

    def __post_init__(self) -> None:
        self.hang_rate = self.ios_hung / self.ios_issued if self.ios_issued else 0.0
