"""Fault injection: FPGA bit flips, corruption-event generation, network
failure orchestration and I/O-hang monitoring."""

from .fpga_errors import (
    BitFlipInjector,
    CorruptionEvent,
    CorruptionEventGenerator,
    QuietInjector,
    ROOT_CAUSE_WEIGHTS,
    flip_bit,
)
from .injection import IncidentOutcome, IoHangMonitor, TimedFault

__all__ = [
    "BitFlipInjector",
    "QuietInjector",
    "flip_bit",
    "CorruptionEvent",
    "CorruptionEventGenerator",
    "ROOT_CAUSE_WEIGHTS",
    "IoHangMonitor",
    "TimedFault",
    "IncidentOutcome",
]
