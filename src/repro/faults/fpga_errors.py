"""FPGA hardware-error injection (§4.4, Figure 11).

"Bit flipping in FPGA can corrupt data and table entries in memory and
distort the execution logic towards an unexpected outcome."  The injector
implements the :class:`repro.core.dpu_offload.FaultInjector` protocol with
independent rates for the two CRC-relevant corruption points:

* payload bits flipped as they pass the datapath (after the CRC engine
  read them — detectable, the common case);
* the computed CRC value itself flipped (detectable);

plus a root-cause generator for Figure 11's corruption-event mix, which
also covers the non-FPGA classes (software bugs, config errors, MCE).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Figure 11's root-cause shares of corruption events caught by software
#: CRC over two years (FPGA flapping explicitly "37%" in §4.4).
ROOT_CAUSE_WEIGHTS: Dict[str, float] = {
    "software_bug": 0.31,
    "fpga_flapping": 0.37,
    "config_error": 0.19,
    "mce_error": 0.13,
}


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Return ``data`` with one bit flipped."""
    if not data:
        raise ValueError("cannot flip a bit in empty data")
    byte_index, bit = divmod(bit_index % (len(data) * 8), 8)
    out = bytearray(data)
    out[byte_index] ^= 1 << bit
    return bytes(out)


class BitFlipInjector:
    """Stochastic payload/CRC corrupter for the SOLAR offload datapath."""

    def __init__(
        self,
        rng: random.Random,
        payload_flip_rate: float = 0.0,
        crc_flip_rate: float = 0.0,
    ):
        for rate in (payload_flip_rate, crc_flip_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate out of range: {rate}")
        self.rng = rng
        self.payload_flip_rate = payload_flip_rate
        self.crc_flip_rate = crc_flip_rate
        self.payload_flips = 0
        self.crc_flips = 0
        self.stage_log: List[Tuple[str, str]] = []

    def corrupt_payload(self, payload: bytes, stage: str) -> bytes:
        if payload and self.rng.random() < self.payload_flip_rate:
            self.payload_flips += 1
            self.stage_log.append(("payload", stage))
            return flip_bit(payload, self.rng.randrange(len(payload) * 8))
        return payload

    def corrupt_crc(self, crc: int, stage: str) -> int:
        if self.rng.random() < self.crc_flip_rate:
            self.crc_flips += 1
            self.stage_log.append(("crc", stage))
            return crc ^ (1 << self.rng.randrange(32))
        return crc

    @property
    def total_injected(self) -> int:
        return self.payload_flips + self.crc_flips


class QuietInjector:
    """A no-op injector (useful as an experiment control)."""

    def corrupt_payload(self, payload: bytes, stage: str) -> bytes:
        return payload

    def corrupt_crc(self, crc: int, stage: str) -> int:
        return crc


@dataclass(frozen=True)
class CorruptionEvent:
    """One corruption incident with its root cause (Figure 11 unit)."""

    event_id: int
    root_cause: str
    detected_by_software_crc: bool


class CorruptionEventGenerator:
    """Draws corruption incidents with Figure 11's root-cause mix.

    Every event in Figure 11 was *mitigated by software CRC* — the figure
    counts detected events by cause — so detection is true by construction
    here; the datapath-level experiments (see
    ``benchmarks/bench_fig11_corruption.py``) independently verify that
    the aggregation check actually catches injected flips.
    """

    def __init__(self, rng: random.Random, weights: Optional[Dict[str, float]] = None):
        self.rng = rng
        self.weights = dict(weights or ROOT_CAUSE_WEIGHTS)
        total = sum(self.weights.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"root-cause weights sum to {total}")
        self._causes = list(self.weights)
        self._cum: List[float] = []
        acc = 0.0
        for cause in self._causes:
            acc += self.weights[cause]
            self._cum.append(acc)
        self._next_id = 1

    def draw(self) -> CorruptionEvent:
        r = self.rng.random()
        for cause, cum in zip(self._causes, self._cum):
            if r <= cum:
                break
        event = CorruptionEvent(self._next_id, cause, True)
        self._next_id += 1
        return event

    def draw_many(self, count: int) -> List[CorruptionEvent]:
        return [self.draw() for _ in range(count)]
