"""Alert rules over scraped metrics, feeding the control-plane incident
stream.

Rules are declarative thresholds over :class:`~repro.telemetry.registry.
Snapshot` rows (latency SLO on a window p99, hang rate, error rate).  The
evaluator runs once per scrape, debounces with ``for_intervals``
(consecutive breaching windows before firing), and — when bound to a
:class:`repro.control.health.HealthMonitor` — declares each firing as a
``telemetry-alert`` incident, so the same failover/upgrade machinery that
reacts to heartbeat loss reacts to telemetry.  Rows with no data
(``None``, e.g. an idle histogram window) never breach: silence is not an
SLO violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .registry import Snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..control.health import HealthMonitor, Incident

ABOVE = "above"
BELOW = "below"


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule over a snapshot row."""

    name: str
    metric: str  # snapshot row key, e.g. "fleet.latency.p99"
    threshold: float
    direction: str = ABOVE
    #: Consecutive breaching scrapes required before the alert fires.
    for_intervals: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in (ABOVE, BELOW):
            raise ValueError(f"direction must be {ABOVE!r} or {BELOW!r}")
        if self.for_intervals < 1:
            raise ValueError(f"for_intervals must be >= 1: {self.for_intervals}")

    def breached(self, value: Optional[float]) -> bool:
        if value is None:
            return False
        return value > self.threshold if self.direction == ABOVE else value < self.threshold


@dataclass
class Alert:
    """One fired alert (open until its rule stops breaching)."""

    rule: AlertRule
    fired_ns: int
    value: float
    resolved_ns: Optional[int] = None
    incident: Optional["Incident"] = field(default=None, repr=False)

    @property
    def open(self) -> bool:
        return self.resolved_ns is None


class AlertEvaluator:
    """Evaluates rules against each snapshot; tracks open alerts."""

    def __init__(
        self,
        rules: Sequence[AlertRule],
        health: Optional["HealthMonitor"] = None,
    ):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names: {names}")
        self.rules = sorted(rules, key=lambda r: r.name)
        self.health = health
        self.alerts: List[Alert] = []
        self._active: Dict[str, Alert] = {}
        self._streak: Dict[str, int] = {rule.name: 0 for rule in self.rules}

    # ------------------------------------------------------------------
    def evaluate(self, snapshot: Snapshot) -> List[Alert]:
        """Run all rules against one snapshot; returns alerts fired now."""
        fired: List[Alert] = []
        for rule in self.rules:
            value = snapshot.get(rule.metric)
            if rule.breached(value):
                self._streak[rule.name] += 1
                if (
                    self._streak[rule.name] >= rule.for_intervals
                    and rule.name not in self._active
                ):
                    alert = Alert(rule, snapshot.t_ns, float(value))
                    if self.health is not None:
                        alert.incident = self.health.report_alert(
                            rule.name,
                            detail=f"{rule.metric}={value:g} {rule.direction} "
                                   f"{rule.threshold:g}",
                        )
                    self._active[rule.name] = alert
                    self.alerts.append(alert)
                    fired.append(alert)
            else:
                self._streak[rule.name] = 0
                open_alert = self._active.pop(rule.name, None)
                if open_alert is not None:
                    open_alert.resolved_ns = snapshot.t_ns
                    if open_alert.incident is not None and self.health is not None:
                        # Route through the monitor so resolution
                        # subscribers (failover, chaos invariants) see it.
                        self.health.resolve(open_alert.incident, at_ns=snapshot.t_ns)
        return fired

    # ------------------------------------------------------------------
    def active(self) -> List[Alert]:
        return [self._active[name] for name in sorted(self._active)]

    def fired_count(self) -> int:
        return len(self.alerts)
