"""Per-node/per-VD metric registry and the simulated-cadence scraper.

The registry is the fleet's metric surface: components register named
**counters** (monotonic), **gauges** (read-through callables — the scrape
hook pattern: the gauge *pulls* from the live object, the object never
pushes) and **sketch histograms** (bounded-memory latency distributions,
see :mod:`repro.telemetry.sketch`).  Metrics carry sorted label tuples
(``node=...``, ``vd=...``), so one registry holds the whole deployment
without per-entity registries.

The :class:`MetricScraper` samples everything on a fixed simulated
cadence, exactly like the paper's always-on monitoring: each tick builds
a :class:`Snapshot` of flat rows (counter values + ``.rate`` deltas,
gauge readings, per-window histogram quantiles) and hands it to
subscribers (the alert evaluator, the flight recorder, the dashboard).
An idle window produces a zero/None-marked row — never an exception —
which is the empty-scrape contract the metrics satellites harden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import Simulator
from .sketch import QuantileSketch

Labels = Tuple[Tuple[str, str], ...]

#: Window quantiles every histogram reports per scrape.
WINDOW_QUANTILES = ((50, "p50"), (95, "p95"), (99, "p99"))


def _label_key(labels: Dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: Labels) -> str:
    """Flat row key, e.g. ``vd.inflight{vd=vd0}`` or ``fleet.hangs``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class CounterMetric:
    """A monotonic counter; the scraper derives per-second rates."""

    name: str
    labels: Labels = ()
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)


@dataclass
class GaugeMetric:
    """A point-in-time reading, pulled from ``fn`` at scrape time."""

    name: str
    labels: Labels = ()
    fn: Optional[Callable[[], float]] = None
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def read(self) -> float:
        return float(self.fn()) if self.fn is not None else self.value

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)


class HistogramMetric:
    """A cumulative sketch plus a per-scrape-window sketch.

    ``observe`` feeds both; the scraper reports the *window* quantiles
    (what alerting wants: "p99 over the last interval") and resets the
    window, while ``sketch`` keeps the whole-run distribution for final
    summaries.  Memory stays O(1) either way.
    """

    def __init__(self, name: str, labels: Labels = (), relative_accuracy: float = 0.01):
        self.name = name
        self.labels = labels
        self.sketch = QuantileSketch(relative_accuracy)
        self.window = QuantileSketch(relative_accuracy)

    @property
    def key(self) -> str:
        return metric_key(self.name, self.labels)

    def observe(self, value: float) -> None:
        self.sketch.add(value)
        self.window.add(value)

    def scrape_rows(self) -> Dict[str, Optional[float]]:
        """Window rows; an idle window yields count 0 and None quantiles."""
        rows: Dict[str, Optional[float]] = {f"{self.key}.count": float(self.window.count)}
        for pct, suffix in WINDOW_QUANTILES:
            rows[f"{self.key}.{suffix}"] = (
                self.window.percentile(pct) if self.window.count else None
            )
        return rows

    def reset_window(self) -> None:
        self.window = QuantileSketch(self.sketch.relative_accuracy)


class MetricRegistry:
    """Get-or-create registry of counters, gauges and histograms."""

    def __init__(self, relative_accuracy: float = 0.01):
        self.relative_accuracy = relative_accuracy
        self._counters: Dict[str, CounterMetric] = {}
        self._gauges: Dict[str, GaugeMetric] = {}
        self._histograms: Dict[str, HistogramMetric] = {}

    def _claim(self, key: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in owners.items():
            if other != kind and key in table:
                raise ValueError(f"metric {key!r} already registered as a {other}")

    def counter(self, name: str, **labels: str) -> CounterMetric:
        key = metric_key(name, _label_key(labels))
        if key not in self._counters:
            self._claim(key, "counter")
            self._counters[key] = CounterMetric(name, _label_key(labels))
        return self._counters[key]

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None, **labels: str
    ) -> GaugeMetric:
        key = metric_key(name, _label_key(labels))
        if key not in self._gauges:
            self._claim(key, "gauge")
            self._gauges[key] = GaugeMetric(name, _label_key(labels), fn=fn)
        elif fn is not None:
            raise ValueError(f"gauge {key!r} already registered with a reader")
        return self._gauges[key]

    def histogram(self, name: str, **labels: str) -> HistogramMetric:
        key = metric_key(name, _label_key(labels))
        if key not in self._histograms:
            self._claim(key, "histogram")
            self._histograms[key] = HistogramMetric(
                name, _label_key(labels), self.relative_accuracy
            )
        return self._histograms[key]

    # -- deterministic iteration (scrape order = sorted key order) -------
    def counters(self) -> List[CounterMetric]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[GaugeMetric]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[HistogramMetric]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


@dataclass(frozen=True)
class Snapshot:
    """One scrape: flat metric rows at one simulated instant."""

    index: int
    t_ns: int
    interval_ns: int
    rows: Dict[str, Optional[float]] = field(default_factory=dict)

    def get(self, key: str) -> Optional[float]:
        return self.rows.get(key)


class MetricScraper:
    """Samples a registry on a fixed simulated cadence."""

    def __init__(self, sim: Simulator, registry: MetricRegistry, interval_ns: int):
        if interval_ns <= 0:
            raise ValueError(f"scrape interval must be positive: {interval_ns}")
        self.sim = sim
        self.registry = registry
        self.interval_ns = interval_ns
        self.scrapes = 0
        self.last: Optional[Snapshot] = None
        self._last_counter_values: Dict[str, int] = {}
        self._subscribers: List[Callable[[Snapshot], None]] = []
        self._started = False
        self._stop_ns: Optional[int] = None

    def subscribe(self, callback: Callable[[Snapshot], None]) -> None:
        self._subscribers.append(callback)

    def start(self, until_ns: Optional[int] = None) -> None:
        """Begin scraping; ``until_ns`` bounds the last tick so the event
        heap drains at the end of a run (same idiom as HealthMonitor)."""
        if self._started:
            raise RuntimeError("scraper already started")
        self._started = True
        self._stop_ns = until_ns
        self.sim.schedule(self.interval_ns, self._tick)

    # ------------------------------------------------------------------
    def scrape_once(self) -> Snapshot:
        """Build one snapshot now (also usable without a cadence)."""
        interval_s = self.interval_ns / 1e9
        rows: Dict[str, Optional[float]] = {}
        for counter in self.registry.counters():
            rows[counter.key] = float(counter.value)
            prev = self._last_counter_values.get(counter.key, 0)
            rows[f"{counter.key}.rate"] = (counter.value - prev) / interval_s
            self._last_counter_values[counter.key] = counter.value
        for gauge in self.registry.gauges():
            rows[gauge.key] = gauge.read()
        for hist in self.registry.histograms():
            rows.update(hist.scrape_rows())
            hist.reset_window()
        snapshot = Snapshot(self.scrapes, self.sim.now, self.interval_ns, rows)
        self.scrapes += 1
        self.last = snapshot
        for subscriber in self._subscribers:
            subscriber(snapshot)
        return snapshot

    def _tick(self) -> None:
        self.scrape_once()
        next_ns = self.sim.now + self.interval_ns
        if self._stop_ns is None or next_ns <= self._stop_ns:
            self.sim.schedule(self.interval_ns, self._tick)
