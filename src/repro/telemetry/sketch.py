"""Mergeable bounded-memory quantile sketch (DDSketch-style).

The fleet observability plane keeps latency distributions for millions of
simulated I/Os without holding a sample per I/O.  The sketch maps every
positive value into logarithmically-spaced buckets: bucket ``k`` covers
``(gamma^(k-1), gamma^k]`` with ``gamma = (1+a)/(1-a)``, so answering a
quantile with the bucket's midpoint is wrong by at most the configured
relative accuracy ``a`` — the "within 2% of exact" contract the tests and
CI enforce for ``a = 0.01``.

Three properties matter operationally:

* **bounded memory** — at most ``max_buckets`` buckets are kept; when the
  cap is hit, the *lowest* buckets collapse together (low latencies are
  the uninteresting tail of an SLO investigation), so memory is O(1) in
  the number of samples;
* **mergeable** — sketches with the same accuracy merge exactly
  (bucket-wise addition), so per-node histograms roll up to fleet
  histograms and per-seed runs pool without bias;
* **serializable** — ``to_dict``/``from_dict`` round-trip through
  canonical JSON, so sketches ride inside cached lab artifacts.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Quantiles with a relative-error guarantee in bounded memory."""

    def __init__(self, relative_accuracy: float = 0.01, max_buckets: int = 2048):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(f"relative accuracy must be in (0, 1): {relative_accuracy}")
        if max_buckets < 8:
            raise ValueError(f"max_buckets too small to be useful: {max_buckets}")
        self.relative_accuracy = relative_accuracy
        self.max_buckets = max_buckets
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self.gamma)
        self._buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        #: Samples folded into the lowest kept bucket by the memory cap;
        #: their quantile answers lose the relative-error guarantee.
        self.collapsed = 0

    # ------------------------------------------------------------------
    def _key(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def _bucket_value(self, key: int) -> float:
        """Midpoint representative: relative error <= a for the bucket."""
        return 2.0 * self.gamma**key / (self.gamma + 1.0)

    # ------------------------------------------------------------------
    def add(self, value: float, count: int = 1) -> None:
        value = float(value)
        if value < 0.0:
            raise ValueError(f"sketch values must be non-negative: {value}")
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        self.count += count
        self.total += value * count
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        if value == 0.0:
            self.zero_count += count
            return
        key = self._key(value)
        self._buckets[key] = self._buckets.get(key, 0) + count
        if len(self._buckets) > self.max_buckets:
            self._collapse()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _collapse(self) -> None:
        """Fold the lowest buckets together until back under the cap."""
        keys = sorted(self._buckets)
        while len(keys) > self.max_buckets:
            lowest = keys.pop(0)
            folded = self._buckets.pop(lowest)
            self._buckets[keys[0]] = self._buckets.get(keys[0], 0) + folded
            self.collapsed += folded

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) of everything added so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            raise ValueError("quantile of empty sketch")
        rank = q * (self.count - 1)
        cum = self.zero_count
        if self.zero_count and rank < cum:
            return 0.0
        for key in sorted(self._buckets):
            cum += self._buckets[key]
            if cum > rank:
                # Clamping to the observed extremes only tightens the error.
                return min(max(self._bucket_value(key), self.min_value), self.max_value)
        return self.max_value

    def percentile(self, p: float) -> float:
        """Percentile (p in [0, 100]); mirrors `repro.metrics.percentile`."""
        return self.quantile(p / 100.0)

    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of empty sketch")
        return self.total / self.count

    def __len__(self) -> int:
        """Kept buckets — the memory footprint proxy the tests bound."""
        return len(self._buckets) + (1 if self.zero_count else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return f"<QuantileSketch a={self.relative_accuracy} empty>"
        return (
            f"<QuantileSketch a={self.relative_accuracy} n={self.count} "
            f"p50={self.quantile(0.5):.0f} p99={self.quantile(0.99):.0f} "
            f"buckets={len(self)}>"
        )

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (same accuracy required)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                f"cannot merge sketches of different accuracy: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        self.collapsed += other.collapsed
        if len(self._buckets) > self.max_buckets:
            self._collapse()

    @classmethod
    def merged(cls, parts: Iterable["QuantileSketch"]) -> "QuantileSketch":
        parts = list(parts)
        if not parts:
            raise ValueError("nothing to merge")
        out = cls(parts[0].relative_accuracy, parts[0].max_buckets)
        for part in parts:
            out.merge(part)
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready state (bucket list sorted for canonical encoding)."""
        buckets: List[Tuple[int, int]] = sorted(self._buckets.items())
        return {
            "relative_accuracy": self.relative_accuracy,
            "max_buckets": self.max_buckets,
            "zero_count": self.zero_count,
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min_value,
            "max": None if self.count == 0 else self.max_value,
            "collapsed": self.collapsed,
            "buckets": [list(pair) for pair in buckets],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "QuantileSketch":
        out = cls(d["relative_accuracy"], d["max_buckets"])
        out._buckets = {int(k): int(c) for k, c in d["buckets"]}
        out.zero_count = d["zero_count"]
        out.count = d["count"]
        out.total = d["total"]
        out.min_value = math.inf if d["min"] is None else d["min"]
        out.max_value = -math.inf if d["max"] is None else d["max"]
        out.collapsed = d.get("collapsed", 0)
        return out
