"""Online slow-I/O diagnosis: blame the right layer before paging anyone.

The paper's operators localize a slow or hung I/O to one of the four
monitored components — **SA**, **FN**, **BN**, **SSD** (Figure 6's
breakdown) — and only then decide who gets the incident.  The
:class:`SlowIoDiagnoser` reproduces that workflow *during* the run: it
consumes every completed :class:`~repro.metrics.trace.IoTrace` the moment
the trace collector records it, flags SLO violations and errors,
attributes each to the component holding the largest share of the
latency, and keeps Figure 8-style hang-location tallies (per component
and per node) as hang signals arrive from the
:class:`~repro.faults.injection.IoHangMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..agent.base import IoRequest
from ..metrics.trace import COMPONENTS, IoTrace

#: Verdict kinds.
SLO_VIOLATION = "slo-violation"
IO_ERROR = "io-error"
HANG = "hang"


def dominant_component(components: Dict[str, int]) -> str:
    """The component owning the largest latency share.

    Ties break in ``COMPONENTS`` order (sa, fn, bn, ssd).  An I/O with
    nothing attributed yet — typically one that vanished into the fabric
    and never produced a completion — is blamed on the frontend network,
    which is where the paper's hang incidents overwhelmingly live
    (Figure 8: every tier of the FN can hang LUNA I/Os).
    """
    best = max(COMPONENTS, key=lambda c: components.get(c, 0))
    return best if components.get(best, 0) > 0 else "fn"


@dataclass(frozen=True)
class SlowIoVerdict:
    """One diagnosed I/O: what went wrong and which layer owns it."""

    io_id: int
    reason: str  # SLO_VIOLATION | IO_ERROR | HANG
    component: str
    node: str
    total_ns: Optional[int]  # None for I/Os that never completed
    share: float  # the blamed component's fraction of attributed latency


class SlowIoDiagnoser:
    """Streams verdicts from completed traces and hang signals.

    Memory is bounded: tallies are O(components + nodes) and the verdict
    list is capped (``max_verdicts``), with a drop counter instead of
    unbounded growth — the flight recorder is the place for full streams.
    """

    def __init__(self, slo_ns: int, max_verdicts: int = 1024):
        if slo_ns <= 0:
            raise ValueError(f"SLO threshold must be positive: {slo_ns}")
        self.slo_ns = slo_ns
        self.max_verdicts = max_verdicts
        self.observed = 0
        self.violations = 0
        self.errors = 0
        self.hangs = 0
        self.verdicts: List[SlowIoVerdict] = []
        self.dropped_verdicts = 0
        #: SLO-violation count per blamed component (the online Figure 6
        #: complaint ledger).
        self.slow_by_component: Dict[str, int] = dict.fromkeys(COMPONENTS, 0)
        #: Hang count per blamed component and per node — the Figure 8
        #: hang-location tallies, maintained while the run is live.
        self.hangs_by_component: Dict[str, int] = dict.fromkeys(COMPONENTS, 0)
        self.hangs_by_node: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _emit(self, verdict: SlowIoVerdict) -> None:
        if len(self.verdicts) < self.max_verdicts:
            self.verdicts.append(verdict)
        else:
            self.dropped_verdicts += 1

    @staticmethod
    def _share(components: Dict[str, int], component: str) -> float:
        attributed = sum(components.values())
        return components.get(component, 0) / attributed if attributed else 0.0

    def observe(self, trace: IoTrace, node: str = "") -> Optional[SlowIoVerdict]:
        """Inspect one completed trace (the TraceCollector subscribe hook)."""
        self.observed += 1
        if not trace.ok:
            self.errors += 1
            component = dominant_component(trace.components)
            verdict = SlowIoVerdict(
                trace.io_id, IO_ERROR, component, node, trace.total_ns,
                self._share(trace.components, component),
            )
            self._emit(verdict)
            return verdict
        if trace.total_ns > self.slo_ns:
            self.violations += 1
            component = dominant_component(trace.components)
            self.slow_by_component[component] += 1
            verdict = SlowIoVerdict(
                trace.io_id, SLO_VIOLATION, component, node, trace.total_ns,
                self._share(trace.components, component),
            )
            self._emit(verdict)
            return verdict
        return None

    def observe_hang(self, io: IoRequest, node: Optional[str] = None) -> SlowIoVerdict:
        """Record one hang signal (the IoHangMonitor ``on_hang`` hook).

        ``node`` defaults to the I/O's VD id — the unit Figure 8 counts
        affected VMs by; pass a host name to tally by host instead.
        """
        self.hangs += 1
        where = io.vd_id if node is None else node
        components = io.trace.components if io.trace is not None else {}
        component = dominant_component(components)
        self.hangs_by_component[component] += 1
        self.hangs_by_node[where] = self.hangs_by_node.get(where, 0) + 1
        total = None
        if io.trace is not None and io.trace.complete_ns is not None:
            total = io.trace.total_ns
        verdict = SlowIoVerdict(
            io.io_id, HANG, component, where, total, self._share(components, component)
        )
        self._emit(verdict)
        return verdict

    # ------------------------------------------------------------------
    def affected_nodes(self) -> int:
        """Nodes with at least one hang — Figure 8's blast-radius count."""
        return len(self.hangs_by_node)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready tally block for artifacts and CLI summaries."""
        return {
            "slo_ns": self.slo_ns,
            "observed": self.observed,
            "violations": self.violations,
            "errors": self.errors,
            "hangs": self.hangs,
            "slow_by_component": dict(sorted(self.slow_by_component.items())),
            "hangs_by_component": dict(sorted(self.hangs_by_component.items())),
            "hangs_by_node": dict(sorted(self.hangs_by_node.items())),
            "affected_nodes": self.affected_nodes(),
            "dropped_verdicts": self.dropped_verdicts,
        }
