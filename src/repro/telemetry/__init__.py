"""repro.telemetry — the fleet observability plane, inside the simulation.

The paper's operational sections (Figure 6's per-component attribution,
Table 2 / Figure 8's hang accounting, §5's "localize, then page" flow)
all presuppose always-on monitoring.  This package is that layer for the
reproduction: bounded-memory streaming sketches, a per-node/per-VD metric
registry scraped on a simulated cadence, an online slow-I/O diagnosis
engine, threshold alerting wired into the control plane's incident
stream, and a JSONL flight recorder — all deterministic functions of the
run's spec and seed.

Modules:

* :mod:`~repro.telemetry.sketch` — mergeable DDSketch-style quantile
  sketch with a relative-error guarantee;
* :mod:`~repro.telemetry.registry` — counters/gauges/sketch-histograms
  plus the simulated-cadence :class:`MetricScraper`;
* :mod:`~repro.telemetry.diagnosis` — SLO violations and hangs blamed on
  the dominant component (SA/FN/BN/SSD), Figure 8-style tallies;
* :mod:`~repro.telemetry.alerts` — threshold rules over snapshots,
  feeding ``telemetry-alert`` incidents to the HealthMonitor;
* :mod:`~repro.telemetry.recorder` — deterministic JSONL flight recorder;
* :mod:`~repro.telemetry.plane` — :class:`TelemetryPlane`, wiring it all
  onto an :class:`~repro.ebs.deployment.EbsDeployment`;
* :mod:`~repro.telemetry.cli` — the ``python -m repro monitor`` command.
"""

from .alerts import ABOVE, BELOW, Alert, AlertEvaluator, AlertRule
from .diagnosis import (
    HANG,
    IO_ERROR,
    SLO_VIOLATION,
    SlowIoDiagnoser,
    SlowIoVerdict,
    dominant_component,
)
from .plane import DEFAULT_INTERVAL_NS, DEFAULT_SLO_NS, TelemetryPlane, default_rules
from .recorder import FlightRecorder
from .registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricRegistry,
    MetricScraper,
    Snapshot,
    metric_key,
)
from .sketch import QuantileSketch

__all__ = [
    "ABOVE",
    "BELOW",
    "Alert",
    "AlertEvaluator",
    "AlertRule",
    "HANG",
    "IO_ERROR",
    "SLO_VIOLATION",
    "SlowIoDiagnoser",
    "SlowIoVerdict",
    "dominant_component",
    "DEFAULT_INTERVAL_NS",
    "DEFAULT_SLO_NS",
    "TelemetryPlane",
    "default_rules",
    "FlightRecorder",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricRegistry",
    "MetricScraper",
    "Snapshot",
    "metric_key",
    "QuantileSketch",
]
