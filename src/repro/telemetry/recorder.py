"""JSONL flight recorder: an append-only stream of telemetry events.

Every scrape, alert transition and slow-I/O verdict can be appended as
one JSON line, giving a run a replayable black-box record (the
simulation-side analogue of the paper's monitoring exporters).  All
timestamps are *simulated* nanoseconds — a recorder file is a pure
function of the run's spec and seed, so recordings are diff-able across
machines and safe next to the lab's content-addressed artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, TextIO


class FlightRecorder:
    """Writes telemetry events as deterministic JSON lines."""

    def __init__(self, path: Optional[str] = None, stream: Optional[TextIO] = None):
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path or stream")
        self._own_handle = stream is None
        self._handle: TextIO = open(path, "w", encoding="ascii") if path else stream
        self.path = path
        self.records = 0
        self.by_kind: Dict[str, int] = {}

    def record(self, kind: str, t_ns: int, **payload: Any) -> None:
        """Append one event line: ``{"kind": ..., "t_ns": ..., ...}``."""
        if self._handle.closed:
            raise ValueError("flight recorder is closed")
        row = {"kind": kind, "t_ns": int(t_ns)}
        row.update(payload)
        self._handle.write(
            json.dumps(row, sort_keys=True, separators=(",", ":"), allow_nan=False)
        )
        self._handle.write("\n")
        self.records += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def close(self) -> None:
        if self._own_handle and not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
