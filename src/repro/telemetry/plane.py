"""The telemetry plane: one object that wires observability onto a
deployment.

A :class:`TelemetryPlane` assembles the subsystem end to end:

* a :class:`~repro.telemetry.registry.MetricRegistry` holding fleet
  counters (completions, errors, hangs, bytes), a fleet latency sketch
  histogram, per-VD metrics and per-node SA gauges;
* the deployment's scrape hooks — ``EbsDeployment.attach_telemetry``
  streams every completed trace into the plane and exposes each storage
  agent's counters; ``VirtualDisk.subscribe`` feeds per-VD completions;
* a :class:`~repro.telemetry.diagnosis.SlowIoDiagnoser` attributing SLO
  violations and hangs to SA/FN/BN/SSD while the run is live;
* a :class:`~repro.telemetry.registry.MetricScraper` on a simulated
  cadence, an :class:`~repro.telemetry.alerts.AlertEvaluator` over each
  snapshot (optionally declaring incidents on a
  :class:`repro.control.health.HealthMonitor`), and an optional
  :class:`~repro.telemetry.recorder.FlightRecorder`.

Everything the plane stores is O(1) per metric — sketches, counters,
bounded verdict lists — so it runs alongside millions of simulated I/Os.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..agent.base import IoRequest, StorageAgent
from ..metrics.trace import IoTrace
from ..sim.events import MS
from .alerts import ABOVE, Alert, AlertEvaluator, AlertRule
from .diagnosis import SlowIoDiagnoser
from .recorder import FlightRecorder
from .registry import MetricRegistry, MetricScraper, Snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..control.health import HealthMonitor
    from ..ebs.deployment import EbsDeployment
    from ..ebs.virtual_disk import VirtualDisk

#: Default scrape cadence (simulated).
DEFAULT_INTERVAL_NS = 1 * MS
#: Default per-I/O latency SLO — generous against Figure 6's ~100-200us
#: healthy-path latencies, so only genuinely slow I/Os are flagged.
DEFAULT_SLO_NS = 500_000


def default_rules(slo_ns: int = DEFAULT_SLO_NS) -> List[AlertRule]:
    """The paper's three operational triggers: SLO, hangs, errors."""
    return [
        AlertRule(
            "latency-slo", "fleet.latency.p99", float(slo_ns), ABOVE,
            description=f"window p99 above the {slo_ns}ns latency SLO",
        ),
        AlertRule(
            "hang-burst", "fleet.hangs.rate", 0.0, ABOVE,
            description="any I/O unanswered past the hang threshold",
        ),
        AlertRule(
            "error-burst", "fleet.errors.rate", 0.0, ABOVE,
            description="any failed I/O in the window",
        ),
    ]


class TelemetryPlane:
    """Fleet observability for one deployment."""

    def __init__(
        self,
        deployment: "EbsDeployment",
        interval_ns: int = DEFAULT_INTERVAL_NS,
        slo_ns: int = DEFAULT_SLO_NS,
        relative_accuracy: float = 0.01,
        health: Optional["HealthMonitor"] = None,
        rules: Optional[Sequence[AlertRule]] = None,
        recorder: Optional[FlightRecorder] = None,
    ):
        self.deployment = deployment
        self.sim = deployment.sim
        self.interval_ns = interval_ns
        self.slo_ns = slo_ns
        self.health = health
        self.recorder = recorder
        self.registry = MetricRegistry(relative_accuracy)
        self.diagnoser = SlowIoDiagnoser(slo_ns)
        self.scraper = MetricScraper(self.sim, self.registry, interval_ns)
        self.evaluator = AlertEvaluator(
            default_rules(slo_ns) if rules is None else rules, health=health
        )
        # Fleet-level metrics (labels-free keys the default rules target).
        self._completed = self.registry.counter("fleet.completed")
        self._errors = self.registry.counter("fleet.errors")
        self._hangs = self.registry.counter("fleet.hangs")
        self._bytes = self.registry.counter("fleet.bytes")
        self._latency = self.registry.histogram("fleet.latency")
        self.scraper.subscribe(self._on_scrape)
        deployment.attach_telemetry(self)

    # ------------------------------------------------------------------
    # Scrape-hook inlets (called by ebs/agent/fault machinery)
    # ------------------------------------------------------------------
    def on_trace(self, trace: IoTrace) -> None:
        """One completed trace (TraceCollector subscription)."""
        if trace.ok:
            self._completed.inc()
            self._bytes.inc(trace.size_bytes)
            self._latency.observe(trace.total_ns)
        else:
            self._errors.inc()
        verdict = self.diagnoser.observe(trace)
        if verdict is not None and self.recorder is not None:
            self.recorder.record(
                "slow-io", self.sim.now, io_id=verdict.io_id,
                reason=verdict.reason, component=verdict.component,
                total_ns=verdict.total_ns, share=round(verdict.share, 4),
            )

    def register_agent(self, node: str, agent: StorageAgent) -> None:
        """Expose one storage agent's counters as per-node gauges."""
        for key in sorted(agent.scrape_counters()):
            self.registry.gauge(
                f"sa.{key}",
                fn=(lambda a=agent, k=key: float(a.scrape_counters()[k])),
                node=node,
            )

    def watch_vd(self, vd: "VirtualDisk") -> None:
        """Track one virtual disk: gauges, counters and a latency sketch."""
        vd_id = vd.vd_id
        self.registry.gauge("vd.inflight", fn=lambda: float(len(vd.inflight)), vd=vd_id)
        self.registry.gauge("vd.reads", fn=lambda: float(vd.reads), vd=vd_id)
        self.registry.gauge("vd.writes", fn=lambda: float(vd.writes), vd=vd_id)
        completed = self.registry.counter("vd.completed", vd=vd_id)
        failed = self.registry.counter("vd.failed", vd=vd_id)
        latency = self.registry.histogram("vd.latency", vd=vd_id)

        def observe(io: IoRequest) -> None:
            if io.trace is not None and io.trace.ok:
                completed.inc()
                latency.observe(io.trace.total_ns)
            else:
                failed.inc()

        vd.subscribe(observe)

    def watch_rebuild(self, executor) -> None:
        """Export one rebuild executor's storm progress as gauges.

        ``rebuild.rate_bps`` samples the throttle policy's current answer,
        so a scraped dashboard shows the reactive policy breathing; the
        byte/transfer gauges make recovery progress and its foreground
        impact (via ``fleet.latency.p99`` on the same snapshots) a single
        correlated time series.
        """
        self.registry.gauge(
            "rebuild.bytes_planned", fn=lambda: float(executor.bytes_planned)
        )
        self.registry.gauge(
            "rebuild.bytes_done", fn=lambda: float(executor.bytes_done)
        )
        self.registry.gauge(
            "rebuild.active", fn=lambda: float(executor.active_count)
        )
        self.registry.gauge(
            "rebuild.queued", fn=lambda: float(executor.queued_count)
        )
        self.registry.gauge(
            "rebuild.transfers_done", fn=lambda: float(executor.transfers_done)
        )
        self.registry.gauge(
            "rebuild.rate_bps", fn=lambda: float(executor.current_rate_bps())
        )

    def on_hang(self, io: IoRequest) -> None:
        """Hang-signal inlet — wire as ``IoHangMonitor(on_hang=...)``."""
        self._hangs.inc()
        verdict = self.diagnoser.observe_hang(io)
        if self.health is not None:
            self.health.report_hang(io)
        if self.recorder is not None:
            self.recorder.record(
                "hang", self.sim.now, io_id=io.io_id, vd=io.vd_id,
                component=verdict.component,
            )

    # ------------------------------------------------------------------
    def start(self, until_ns: Optional[int] = None) -> None:
        self.scraper.start(until_ns)

    def _on_scrape(self, snapshot: Snapshot) -> None:
        fired = self.evaluator.evaluate(snapshot)
        if self.recorder is not None:
            self.recorder.record("scrape", snapshot.t_ns, rows=snapshot.rows)
            for alert in fired:
                self.recorder.record(
                    "alert", snapshot.t_ns, rule=alert.rule.name,
                    metric=alert.rule.metric, value=alert.value,
                )

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def fleet_row(self, snapshot: Snapshot) -> Dict[str, Any]:
        """One dashboard row from one snapshot (per-deployment view)."""
        p50 = snapshot.get("fleet.latency.p50")
        p99 = snapshot.get("fleet.latency.p99")
        return {
            "t_ns": snapshot.t_ns,
            "iops": snapshot.get("fleet.completed.rate") or 0.0,
            "mb_s": (snapshot.get("fleet.bytes.rate") or 0.0) / (1024 * 1024),
            "p50_us": None if p50 is None else p50 / 1_000,
            "p99_us": None if p99 is None else p99 / 1_000,
            "window_ios": int(snapshot.get("fleet.latency.count") or 0),
            "hangs": int(snapshot.get("fleet.hangs") or 0),
            "errors": int(snapshot.get("fleet.errors") or 0),
            "active_alerts": [a.rule.name for a in self.evaluator.active()],
        }

    def _quantiles(self) -> Dict[str, Optional[float]]:
        sketch = self._latency.sketch
        if sketch.count == 0:
            return {"count": 0, "mean": None, "p50": None, "p95": None,
                    "p99": None, "max": None}
        return {
            "count": sketch.count,
            "mean": round(sketch.mean(), 3),
            "p50": round(sketch.percentile(50), 3),
            "p95": round(sketch.percentile(95), 3),
            "p99": round(sketch.percentile(99), 3),
            "max": round(sketch.max_value, 3),
        }

    def summary(self) -> Dict[str, Any]:
        """Machine-readable run summary (canonical-JSON-safe, simulated
        time only — byte-identical across processes for one spec+seed)."""
        return {
            "interval_ns": self.interval_ns,
            "slo_ns": self.slo_ns,
            "relative_accuracy": self.registry.relative_accuracy,
            "scrapes": self.scraper.scrapes,
            "completed": self._completed.value,
            "errors": self._errors.value,
            "hangs": self._hangs.value,
            "bytes_moved": self._bytes.value,
            "latency_ns": self._quantiles(),
            "sketch_buckets": len(self._latency.sketch),
            "slow_io": self.diagnoser.summary(),
            "alerts": [
                {
                    "rule": alert.rule.name,
                    "metric": alert.rule.metric,
                    "value": round(alert.value, 6),
                    "fired_ns": alert.fired_ns,
                    "resolved_ns": alert.resolved_ns,
                }
                for alert in self.evaluator.alerts
            ],
        }
