"""The ``python -m repro monitor`` subcommand.

Runs a fio fleet workload on one deployment with the full telemetry
plane attached — streaming sketches, online slow-I/O diagnosis, alert
rules feeding the control plane's HealthMonitor — and renders a periodic
fleet dashboard while the simulation runs.  Typical usage::

    python -m repro monitor --stack solar --duration-ms 200
    python -m repro monitor --stack luna --fault blackhole:spine:1.0@30 \\
        --hang-ms 50 --interval-ms 20
    python -m repro monitor --json --jsonl /tmp/flight.jsonl

Each scrape interval prints one dashboard line (IOPS, window p50/p99,
hang count, active alerts); the run ends with a per-VD table, the
diagnosis engine's component/hang-location tallies, the incident log and
— with ``--json`` — a machine-readable summary.  Exit code is 0 on a
completed run regardless of alerts (monitoring observes, it does not
gate); bad arguments exit 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..control.health import HealthMonitor
from ..ebs import DeploymentSpec, EbsDeployment, STACKS, VirtualDisk
from ..faults import IoHangMonitor, TimedFault
from ..sim import MS
from ..workloads import FioJob, FioSpec
from .plane import DEFAULT_SLO_NS, TelemetryPlane
from .recorder import FlightRecorder
from .registry import Snapshot

#: Simulated slack past the fio deadline so in-flight I/Os and armed
#: hang checks resolve inside the run (mirrors the lab runner).
DRAIN_NS = 20 * MS


def add_monitor_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    p = sub.add_parser(
        "monitor",
        help="run a workload under the live telemetry plane",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--stack", choices=STACKS, default="solar")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration-ms", type=float, default=200.0,
                   help="fio issue window in simulated ms (default: 200)")
    p.add_argument("--interval-ms", type=float, default=20.0,
                   help="telemetry scrape cadence in simulated ms (default: 20)")
    p.add_argument("--vds", type=int, default=2,
                   help="virtual disks, round-robin across compute hosts")
    p.add_argument("--vd-size-mb", type=int, default=64)
    p.add_argument("--iodepth", type=int, default=8)
    p.add_argument("--block-sizes-kb", default="4,16",
                   help="comma list of block sizes in KB (default: 4,16)")
    p.add_argument("--read-fraction", type=float, default=0.3)
    p.add_argument("--fault", action="append", default=[], metavar="SPEC",
                   help="kind:target:param@start_ms[-end_ms]; repeatable "
                        "(e.g. blackhole:spine:1.0@30)")
    p.add_argument("--slo-us", type=float, default=DEFAULT_SLO_NS / 1_000,
                   help="per-I/O latency SLO in us for slow-I/O diagnosis "
                        f"and the p99 alert (default: {DEFAULT_SLO_NS / 1_000:g})")
    p.add_argument("--hang-ms", type=float, default=50.0,
                   help="I/O hang threshold in simulated ms (default: 50; "
                        "Table 2 uses 1000, shortened here so short "
                        "monitoring drills still observe hangs)")
    p.add_argument("--accuracy", type=float, default=0.01,
                   help="sketch relative accuracy (default: 0.01)")
    p.add_argument("--jsonl", metavar="PATH",
                   help="write a JSONL flight record of scrapes/alerts/hangs")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the machine-readable summary as JSON")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the periodic dashboard lines")
    return p


def _format_table(headers, rows) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _dashboard_line(plane: TelemetryPlane, snapshot: Snapshot) -> str:
    row = plane.fleet_row(snapshot)
    p50 = "-" if row["p50_us"] is None else f"{row['p50_us']:.1f}us"
    p99 = "-" if row["p99_us"] is None else f"{row['p99_us']:.1f}us"
    alerts = ",".join(row["active_alerts"]) or "-"
    return (
        f"[{row['t_ns'] / MS:7.1f}ms] iops={row['iops']:>9.0f} "
        f"p50={p50:>9s} p99={p99:>9s} hangs={row['hangs']:<4d} "
        f"errors={row['errors']:<3d} alerts={alerts}"
    )


def cmd_monitor(args: argparse.Namespace) -> int:
    from ..lab.cli import parse_fault  # shared fault grammar

    try:
        faults = [parse_fault(text) for text in args.fault]
        block_sizes = tuple(
            int(float(kb) * 1024) for kb in args.block_sizes_kb.split(",")
        )
        if args.vds < 1:
            raise ValueError(f"need at least one VD, got {args.vds}")
        if args.duration_ms <= 0 or args.interval_ms <= 0:
            raise ValueError("duration and interval must be positive")
    except ValueError as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 2

    duration_ns = int(args.duration_ms * MS)
    interval_ns = int(args.interval_ms * MS)
    hang_ns = int(args.hang_ms * MS)
    slo_ns = int(args.slo_us * 1_000)

    dep = EbsDeployment(DeploymentSpec(
        stack=args.stack, seed=args.seed,
        compute_racks=1, compute_hosts_per_rack=2,
        storage_racks=2, storage_hosts_per_rack=4,
    ))
    health = HealthMonitor(dep.sim)
    recorder: Optional[FlightRecorder] = (
        FlightRecorder(path=args.jsonl) if args.jsonl else None
    )
    plane = TelemetryPlane(
        dep, interval_ns=interval_ns, slo_ns=slo_ns,
        relative_accuracy=args.accuracy, health=health, recorder=recorder,
    )
    hosts = dep.compute_host_names()
    vds: List[VirtualDisk] = []
    for i in range(args.vds):
        vd = VirtualDisk(
            dep, f"vd{i}", hosts[i % len(hosts)], args.vd_size_mb * 1024 * 1024
        )
        plane.watch_vd(vd)
        vds.append(vd)
    hang_monitor = IoHangMonitor(dep.sim, threshold_ns=hang_ns, on_hang=plane.on_hang)
    for fault in faults:
        TimedFault(fault.build(), fault.start_ns, fault.end_ns).schedule(
            dep.sim, dep.topology
        )
    jobs = [
        FioJob(
            dep.sim, vd,
            FioSpec(block_sizes=block_sizes, iodepth=args.iodepth,
                    read_fraction=args.read_fraction, runtime_ns=duration_ns,
                    name=f"monitor{i}"),
            on_issue=hang_monitor.watch,
        )
        for i, vd in enumerate(vds)
    ]

    until_ns = duration_ns + DRAIN_NS + (hang_ns if faults else 0)
    if not (args.quiet or args.as_json):
        print(f"{args.stack}: {len(vds)} VDs, scrape every "
              f"{interval_ns / MS:g}ms, SLO {slo_ns / 1000:g}us, "
              f"hang threshold {hang_ns / MS:g}ms, "
              f"{len(faults)} scheduled fault(s)")
        plane.scraper.subscribe(
            lambda snapshot: print(_dashboard_line(plane, snapshot), flush=True)
        )
    for job in jobs:
        job.start()
    plane.start(until_ns=until_ns)
    dep.run(until_ns=until_ns)
    if recorder is not None:
        recorder.close()

    summary = {
        "schema": 1,
        "stack": args.stack,
        "seed": args.seed,
        "duration_ns": duration_ns,
        "sim_ns": dep.sim.now,
        "vds": len(vds),
        "issued": sum(job.issues for job in jobs),
        "watched": hang_monitor.watched,
        "faults": len(faults),
        "incidents": len(health.incidents),
        "telemetry": plane.summary(),
    }
    summary["alerts"] = summary["telemetry"]["alerts"]

    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    telemetry = summary["telemetry"]
    lat = telemetry["latency_ns"]
    print()
    rows = []
    for vd in vds:
        hist = plane.registry.histogram("vd.latency", vd=vd.vd_id).sketch
        done = plane.registry.counter("vd.completed", vd=vd.vd_id).value
        rows.append([
            vd.vd_id, vd.host_name, str(vd.reads), str(vd.writes), str(done),
            "-" if not hist.count else f"{hist.percentile(50) / 1000:.1f}",
            "-" if not hist.count else f"{hist.percentile(99) / 1000:.1f}",
            str(telemetry["slow_io"]["hangs_by_node"].get(vd.vd_id, 0)),
        ])
    print(_format_table(
        ["vd", "host", "reads", "writes", "done", "p50 us", "p99 us", "hangs"],
        rows,
    ))
    print()
    print(f"fleet: {telemetry['completed']} I/Os"
          + ("" if lat["count"] == 0 else
             f", p50 {lat['p50'] / 1000:.1f}us, p99 {lat['p99'] / 1000:.1f}us")
          + f", {telemetry['hangs']} hung, {telemetry['errors']} failed, "
            f"{telemetry['scrapes']} scrapes, "
            f"{telemetry['sketch_buckets']} sketch buckets")
    slow = telemetry["slow_io"]
    print(f"diagnosis: {slow['violations']} SLO violations "
          f"{slow['slow_by_component']}, hang locations "
          f"{slow['hangs_by_component']} across {slow['affected_nodes']} VDs")
    for alert in telemetry["alerts"]:
        state = ("open" if alert["resolved_ns"] is None
                 else f"resolved@{alert['resolved_ns'] / MS:g}ms")
        print(f"alert: {alert['rule']} ({alert['metric']}={alert['value']:g}) "
              f"fired@{alert['fired_ns'] / MS:g}ms {state}")
    if not telemetry["alerts"]:
        print("alert: none fired")
    print(f"incidents: {len(health.incidents)} declared via HealthMonitor")
    if recorder is not None:
        print(f"flight record: {recorder.path} ({recorder.records} events)")
    return 0
